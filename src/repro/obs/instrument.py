"""The instrumentation bundle threaded through the analyzers.

:class:`Instrumentation` groups one :class:`~repro.obs.metrics.MetricsRegistry`,
one :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.trace.ProgressHook` so hot paths carry a single
handle.  The shared :data:`OFF` instance is fully disabled; analyzers
default to it, which keeps the uninstrumented code path identical to
the pre-observability behavior.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ProgressCallback, ProgressHook, Tracer

__all__ = ["Instrumentation", "OFF"]


class Instrumentation:
    """Metrics + tracer + progress, enabled or disabled as one unit."""

    __slots__ = ("enabled", "metrics", "tracer", "progress")

    def __init__(
        self,
        enabled: bool = False,
        progress: Optional[Union[ProgressCallback, ProgressHook]] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled)
        self.tracer = Tracer(enabled)
        self.progress = (
            progress if isinstance(progress, ProgressHook) else ProgressHook(progress)
        )

    @classmethod
    def create(
        cls,
        collect_stats: bool,
        progress: Optional[Union[ProgressCallback, ProgressHook]] = None,
    ) -> "Instrumentation":
        """The bundle for an analyzer run: :data:`OFF` when nothing is on."""
        if not collect_stats and progress is None:
            return OFF
        return cls(enabled=collect_stats, progress=progress)

    def export(self) -> Optional[Dict[str, object]]:
        """Collected stats as a JSON dict — None when disabled.

        The shape is the ``stats`` field documented in
        ``docs/OBSERVABILITY.md``: the registry's counters / gauges /
        timers plus the span tree under ``"spans"``.
        """
        if not self.enabled:
            return None
        stats = self.metrics.to_dict()
        stats["spans"] = self.tracer.to_list()
        return stats


#: Shared disabled bundle — the analyzers' default.
OFF = Instrumentation()
