"""Result containers for the combined analysis and method comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PathComparison", "ComparisonStats", "AnalysisResult"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class PathComparison:
    """Per-VL-path bounds from both methods and their combination.

    ``benefit_trajectory_pct`` is the paper's Table I metric:
    ``100 * (NC - Trajectory) / NC`` — positive when the Trajectory
    bound is tighter.  ``benefit_best_pct`` is the same for the
    combined bound (never negative by construction).
    """

    vl_name: str
    path_index: int
    node_path: Tuple[str, ...]
    network_calculus_us: float
    trajectory_us: float
    best_us: float
    benefit_trajectory_pct: float
    benefit_best_pct: float

    @property
    def flow(self) -> str:
        """Readable identifier, e.g. ``"v1[0]"``."""
        return f"{self.vl_name}[{self.path_index}]"

    @property
    def trajectory_wins(self) -> bool:
        """True when the Trajectory bound is strictly tighter."""
        return self.trajectory_us < self.network_calculus_us - 1e-9


@dataclass(frozen=True)
class ComparisonStats:
    """Aggregate statistics in the shape of the paper's Table I."""

    n_paths: int
    mean_benefit_trajectory_pct: float
    max_benefit_trajectory_pct: float
    min_benefit_trajectory_pct: float
    mean_benefit_best_pct: float
    max_benefit_best_pct: float
    min_benefit_best_pct: float
    trajectory_wins_share: float
    """Fraction of VL paths where the Trajectory bound is strictly tighter."""

    def as_table(self) -> str:
        """Render as the paper's Table I layout."""
        rows = [
            ("", "Trajectory/WCNC", "Best/WCNC"),
            (
                "Mean",
                f"{self.mean_benefit_trajectory_pct:.2f}%",
                f"{self.mean_benefit_best_pct:.2f}%",
            ),
            (
                "Maximum",
                f"{self.max_benefit_trajectory_pct:.2f}%",
                f"{self.max_benefit_best_pct:.2f}%",
            ),
            (
                "Minimum",
                f"{self.min_benefit_trajectory_pct:.2f}%",
                f"{self.min_benefit_best_pct:.2f}%",
            ),
        ]
        widths = [max(len(row[col]) for row in rows) for col in range(3)]
        lines = [
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
            for row in rows
        ]
        lines.append(
            f"(Trajectory strictly tighter on {self.trajectory_wins_share * 100:.1f}% "
            f"of {self.n_paths} VL paths)"
        )
        return "\n".join(lines)


@dataclass
class AnalysisResult:
    """Combined outcome: both methods plus the per-path best bound.

    Attributes
    ----------
    paths:
        One :class:`PathComparison` per VL path, keyed by
        ``(vl_name, path_index)``.
    stats:
        Aggregate statistics (populated by :func:`compare_methods`; may
        be None for a bare :func:`analyze_network` run on request).
    """

    paths: Dict[FlowPathKey, PathComparison] = field(default_factory=dict)
    stats: Optional[ComparisonStats] = None

    def path_list(self) -> List[PathComparison]:
        """All per-path comparisons in deterministic order."""
        return [self.paths[key] for key in sorted(self.paths)]

    def best_us(self, vl_name: str, path_index: int = 0) -> float:
        """Combined (tightest) bound for one VL path."""
        return self.paths[(vl_name, path_index)].best_us
