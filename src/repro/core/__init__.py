"""Combined analysis and method comparison.

The paper's headline recommendation (Sec. IV) is the **combined
approach**: run both Network Calculus and the Trajectory approach and
keep, for every VL path, the tighter of the two bounds — never worse
than either method alone.  This package implements that combination and
the comparison statistics of the paper's evaluation (Table I and the
per-parameter aggregations behind Figs. 5 and 6).

Entry points:

* :func:`analyze_network` — run both methods on a configuration and
  return per-path NC / Trajectory / best bounds;
* :func:`compare_methods` — the same plus aggregate benefit statistics.
"""

from repro.core.combined import analyze_network, build_comparison
from repro.core.comparison import (
    benefit_percent,
    compare_methods,
    group_mean_benefit,
    summarize,
)
from repro.core.jitter import JitterBound, jitter_bounds, path_floor_us
from repro.core.reporting import certification_report
from repro.core.results import AnalysisResult, ComparisonStats, PathComparison

__all__ = [
    "analyze_network",
    "build_comparison",
    "compare_methods",
    "benefit_percent",
    "summarize",
    "group_mean_benefit",
    "jitter_bounds",
    "path_floor_us",
    "JitterBound",
    "certification_report",
    "AnalysisResult",
    "ComparisonStats",
    "PathComparison",
]
