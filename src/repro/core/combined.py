"""The combined approach: per-path best of both analyses.

Paper Sec. II-C: *"The combined approach keeps for each VL path the
best obtained by either trajectory or network calculus approach"* —
sound because each method independently produces a valid upper bound,
so their minimum is one too.
"""

from __future__ import annotations

from typing import Optional

from repro.core.results import AnalysisResult, PathComparison
from repro.netcalc.analyzer import analyze_network_calculus
from repro.netcalc.results import NetworkCalculusResult
from repro.network.topology import Network
from repro.trajectory.analyzer import analyze_trajectory
from repro.trajectory.results import TrajectoryResult

__all__ = ["analyze_network", "build_comparison"]


def build_comparison(
    nc_result: NetworkCalculusResult, trajectory_result: TrajectoryResult
) -> AnalysisResult:
    """Merge per-path bounds of the two methods into an :class:`AnalysisResult`.

    Both results must come from the same configuration (same path keys);
    a mismatch raises :class:`ValueError`.
    """
    if set(nc_result.paths) != set(trajectory_result.paths):
        raise ValueError(
            "the two results cover different VL paths; "
            "run both analyses on the same configuration"
        )
    result = AnalysisResult()
    for key in sorted(nc_result.paths):
        nc_path = nc_result.paths[key]
        traj_path = trajectory_result.paths[key]
        nc_us = nc_path.total_us
        traj_us = traj_path.total_us
        best_us = min(nc_us, traj_us)
        result.paths[key] = PathComparison(
            vl_name=nc_path.vl_name,
            path_index=nc_path.path_index,
            node_path=nc_path.node_path,
            network_calculus_us=nc_us,
            trajectory_us=traj_us,
            best_us=best_us,
            benefit_trajectory_pct=100.0 * (nc_us - traj_us) / nc_us,
            benefit_best_pct=100.0 * (nc_us - best_us) / nc_us,
        )
    return result


def analyze_network(
    network: Network,
    grouping: bool = True,
    serialization: bool = True,
    refine_smax: bool = True,
    nc_result: Optional[NetworkCalculusResult] = None,
    trajectory_result: Optional[TrajectoryResult] = None,
    collect_stats: bool = False,
    progress=None,
    explain: bool = False,
    trajectory_kernel: Optional[str] = None,
) -> AnalysisResult:
    """Run both methods on ``network`` and combine them per path.

    Parameters
    ----------
    grouping / serialization / refine_smax:
        Forwarded to the respective analyzers (all default to the
        paper's tool configuration).
    trajectory_kernel:
        ``"fast"`` (default) or ``"reference"`` — which trajectory
        sweep implementation to run; the two produce bit-identical
        bounds (enforced by ``scripts/kernel_gate.py``).
    nc_result / trajectory_result:
        Pre-computed results to reuse instead of re-running an analysis
        (e.g. in parameter sweeps that only perturb one method's input).
    collect_stats / progress:
        Observability hooks forwarded to both analyzers (see
        :mod:`repro.obs`); the collected snapshots live on the
        per-method results' ``stats`` fields.
    explain:
        Attach bound provenance ledgers to both per-method results
        (see :mod:`repro.explain`); bounds are bit-identical either
        way.  Ignored for a method whose result was passed in.
    """
    if nc_result is None:
        nc_result = analyze_network_calculus(
            network,
            grouping=grouping,
            collect_stats=collect_stats,
            progress=progress,
            explain=explain,
        )
    if trajectory_result is None:
        trajectory_result = analyze_trajectory(
            network,
            serialization=serialization,
            refine_smax=refine_smax,
            collect_stats=collect_stats,
            progress=progress,
            explain=explain,
            kernel=trajectory_kernel,
        )
    return build_comparison(nc_result, trajectory_result)
