"""End-to-end jitter bounds.

The paper's problem statement (Sec. I) asks for upper bounds on the
*end-to-end delay and jitter* of each flow.  With a worst-case upper
bound ``D_max`` from the analyses and the uncontended store-and-forward
minimum ``D_min`` (minimum-size frames, empty queues, bare technological
latencies), the delivery jitter of a VL path is bounded by
``D_max - D_min`` — the figure receivers use to size de-jittering
buffers and the RM skew windows of redundant networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.results import AnalysisResult
from repro.network.topology import Network

__all__ = ["JitterBound", "path_floor_us", "jitter_bounds"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class JitterBound:
    """Delay window of one VL path.

    Attributes
    ----------
    floor_us:
        Best-case end-to-end delay (uncontended, minimum-size frames).
    bound_us:
        Worst-case upper bound used (the combined bound by default).
    """

    vl_name: str
    path_index: int
    floor_us: float
    bound_us: float

    @property
    def jitter_us(self) -> float:
        """Upper bound on the delivery jitter (``bound - floor``)."""
        return self.bound_us - self.floor_us


def path_floor_us(network: Network, vl_name: str, path_index: int = 0) -> float:
    """Uncontended minimum delay of a VL path.

    Minimum-size frames transmitted back-to-back with no queueing:
    one transmission per output port plus each owner's technological
    latency.  This is also the delay floor any simulation can reach,
    asserted by the test suite.
    """
    vl = network.vl(vl_name)
    terms = []
    for pid in network.port_path(vl_name, path_index):
        terms.append(vl.s_min_bits / network.link_rate(*pid))
        terms.append(network.node(pid[0]).technological_latency_us)
    return math.fsum(terms)


def jitter_bounds(
    network: Network, result: AnalysisResult
) -> Dict[FlowPathKey, JitterBound]:
    """Jitter bound of every VL path from a combined analysis result."""
    out: Dict[FlowPathKey, JitterBound] = {}
    for key, path in result.paths.items():
        floor = path_floor_us(network, path.vl_name, path.path_index)
        if path.best_us < floor - 1e-6:
            raise ValueError(
                f"bound {path.best_us} below the physical floor {floor} "
                f"for {path.flow}: inconsistent inputs"
            )
        out[key] = JitterBound(
            vl_name=path.vl_name,
            path_index=path.path_index,
            floor_us=floor,
            bound_us=path.best_us,
        )
    return out
