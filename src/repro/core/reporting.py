"""Certification-style text reports.

The certification use of these analyses (paper Sec. II-B) produces two
artefacts: per-VL end-to-end delay bounds and per-port latency/backlog
figures for switch buffer dimensioning.  :func:`certification_report`
renders both from one combined analysis, in a deterministic plain-text
format suitable for diffing between configuration revisions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.jitter import jitter_bounds
from repro.core.results import AnalysisResult
from repro.netcalc.results import NetworkCalculusResult
from repro.network.topology import Network

__all__ = ["certification_report"]


def _section(title: str) -> List[str]:
    return ["", title, "=" * len(title)]


def certification_report(
    network: Network,
    result: AnalysisResult,
    nc_result: Optional[NetworkCalculusResult] = None,
    top_paths: int = 10,
) -> str:
    """Render a full analysis report for one configuration.

    Parameters
    ----------
    network / result:
        The configuration and its combined analysis.
    nc_result:
        A Network Calculus result for the port-level section (delay and
        backlog per output port); omitted when not supplied.
    top_paths:
        How many critical paths to detail.
    """
    lines: List[str] = [
        f"AFDX worst-case delay analysis report — configuration {network.name!r}",
        f"{len(network.end_systems())} end systems, {len(network.switches())} switches, "
        f"{len(network.links())} links, {len(network.virtual_links)} VLs / "
        f"{len(network.flow_paths())} paths",
        f"max port utilization: {network.max_utilization():.3f}",
    ]

    lines += _section("End-to-end delay bounds (combined approach)")
    jitters = jitter_bounds(network, result)
    header = (
        f"{'VL path':<16}{'WCNC':>10}{'Trajectory':>12}{'bound':>10}"
        f"{'floor':>10}{'jitter':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(result.paths):
        path = result.paths[key]
        jb = jitters[key]
        lines.append(
            f"{path.flow:<16}{path.network_calculus_us:>10.1f}"
            f"{path.trajectory_us:>12.1f}{path.best_us:>10.1f}"
            f"{jb.floor_us:>10.1f}{jb.jitter_us:>10.1f}"
        )

    lines += _section(f"Top {top_paths} critical paths")
    ranked = sorted(result.paths.values(), key=lambda p: -p.best_us)[:top_paths]
    for path in ranked:
        lines.append(
            f"{path.flow:<16}{path.best_us:>10.1f} us via "
            f"{' -> '.join(path.node_path)}"
        )

    if result.stats is not None:
        lines += _section("Method comparison (paper Table I format)")
        lines.extend(result.stats.as_table().splitlines())

    if nc_result is not None:
        lines += _section("Output-port dimensioning (Network Calculus)")
        header = (
            f"{'port':<16}{'flows':>6}{'util':>8}{'delay (us)':>12}"
            f"{'buffer (B)':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for port_id in sorted(nc_result.ports):
            port = nc_result.ports[port_id]
            lines.append(
                f"{port_id[0] + '->' + port_id[1]:<16}{port.n_flows:>6}"
                f"{port.utilization:>8.3f}{port.delay_us:>12.1f}"
                f"{port.backlog_bits / 8:>12.0f}"
            )
        lines.append(
            f"total switch buffer budget: "
            f"{nc_result.total_buffer_bits() / 8 / 1024:.1f} KiB"
        )

    return "\n".join(lines) + "\n"
