"""Aggregate comparison statistics (the paper's Table I and figure data).

The paper reports benefits as percentages relative to the Network
Calculus bound: ``100 * (WCNC - other) / WCNC``.  Positive values mean
the other method is tighter.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.combined import analyze_network
from repro.core.results import AnalysisResult, ComparisonStats, PathComparison
from repro.network.topology import Network

__all__ = ["benefit_percent", "summarize", "compare_methods", "group_mean_benefit"]


def benefit_percent(reference_us: float, other_us: float) -> float:
    """Relative improvement of ``other`` over ``reference`` in percent."""
    if reference_us <= 0:
        raise ValueError(f"reference bound must be positive, got {reference_us}")
    return 100.0 * (reference_us - other_us) / reference_us


def summarize(paths: Iterable[PathComparison]) -> ComparisonStats:
    """Reduce per-path comparisons to the paper's Table I statistics."""
    entries = list(paths)
    if not entries:
        raise ValueError("cannot summarize an empty set of path comparisons")
    traj = [p.benefit_trajectory_pct for p in entries]
    best = [p.benefit_best_pct for p in entries]
    wins = sum(1 for p in entries if p.trajectory_wins)
    return ComparisonStats(
        n_paths=len(entries),
        mean_benefit_trajectory_pct=math.fsum(traj) / len(traj),
        max_benefit_trajectory_pct=max(traj),
        min_benefit_trajectory_pct=min(traj),
        mean_benefit_best_pct=math.fsum(best) / len(best),
        max_benefit_best_pct=max(best),
        min_benefit_best_pct=min(best),
        trajectory_wins_share=wins / len(entries),
    )


def compare_methods(
    network: Network,
    grouping: bool = True,
    serialization: bool = True,
    refine_smax: bool = True,
    collect_stats: bool = False,
    progress=None,
) -> AnalysisResult:
    """Run both analyses and attach aggregate statistics.

    This is the driver behind Table I: ``result.stats.as_table()``
    renders the same three rows the paper prints.
    """
    result = analyze_network(
        network,
        grouping=grouping,
        serialization=serialization,
        refine_smax=refine_smax,
        collect_stats=collect_stats,
        progress=progress,
    )
    result.stats = summarize(result.paths.values())
    return result


def group_mean_benefit(
    result: AnalysisResult,
    key: Callable[[PathComparison], object],
    keys: Optional[Sequence[object]] = None,
) -> Dict[object, float]:
    """Mean Trajectory benefit per group of VL paths.

    ``key`` maps a path comparison to its group (e.g. the VL's BAG for
    Fig. 5 or its ``s_max`` for Fig. 6).  When ``keys`` is given, the
    output contains exactly those groups (missing ones are skipped).
    """
    buckets: Dict[object, List[float]] = {}
    for path in result.paths.values():
        buckets.setdefault(key(path), []).append(path.benefit_trajectory_pct)
    means = {group: math.fsum(vals) / len(vals) for group, vals in buckets.items()}
    if keys is not None:
        return {group: means[group] for group in keys if group in means}
    return means
