"""Provenance recorder for the Trajectory analyzer.

Unlike Network Calculus, a trajectory bound is the outcome of a
fixed-point iteration: the final sweep's bounds depend on the ``Smax``
map that sweep ran with.  When ``explain=True`` the analyzer therefore
snapshots the ``Smax`` map entering each sweep and stashes the final
sweep's complete prefix-bound dictionary (zero cost in the inner
loops — two dict copies per sweep).  This module replays each path's
tree walk under that snapshot and emits the ledger of the paper's
trajectory formula (Sec. III)::

    R_i(t*) = W(t*) + sum_k Delta_k + sum_k L_k - gain - t*

``workload``
    ``W(t*)`` — the busy-period workload at the critical instant,
    broken down (informationally, with an exact closing residual) into
    per-competitor charges tagged with the input link each competitor
    arrived through at its meeting port.
``counted-twice``
    The per-transition largest-frame term ``Delta_k`` (the paper's
    Sec. III-B "frame counted twice" pessimism source).
``node-latency``
    Technological latencies ``L_k``.
``serialization-gain``
    The (negative) input-link serialization credit per port.
``release-offset``
    ``-t*``, the studied frame's release instant within the source
    busy period.
``fp-residual``
    Exact rounding errors of every accumulation replay
    (:mod:`repro.obs.provenance`), making the ledger sum to the bound
    bit for bit.

Every replayed accumulation is cross-checked against the diagnostics
the analyzer recorded (``workload_us`` / ``transition_us`` /
``latency_us`` / ``serialization_gain_us`` / ``total_us``); any
mismatch raises :class:`ProvenanceError` rather than producing a
plausible-but-wrong explanation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ProvenanceError
from repro.network.port import PortId
from repro.obs.provenance import (
    FP_RESIDUAL,
    Decomposition,
    ExactAccumulator,
    Term,
    closing_residual,
)
from repro.trajectory.analyzer import _EPS, _flow_events
from repro.trajectory.busy_period import interference_count

__all__ = ["trajectory_provenance"]


def _path_walk_state(analyzer, vl_name: str, ports: List[PortId]):
    """Replay the DFS interference state along one root->leaf path.

    Returns ``(charge_entries, per-port serialization gains)`` where
    each charge entry is ``(name, meeting_port, (C, T, A), kind)`` in
    the order the walk folded the flows in.  Mirrors
    :meth:`TrajectoryAnalyzer._walk_tree` exactly: the state at a tree
    node only depends on the root->node path (sibling branches are
    rolled back), so a linear walk reproduces it.
    """
    network = analyzer.network
    vl = network.vl(vl_name)
    root = ports[0]
    own_c = vl.s_max_bits / analyzer._port_rate[root]
    competitors: Dict[object, Tuple[float, float, float]] = {
        vl_name: (own_c, vl.bag_us, 0.0)
    }
    entries: List[Tuple[str, PortId, Tuple[float, float, float], str]] = [
        (vl_name, root, competitors[vl_name], "studied")
    ]
    for other in analyzer._port_vls[root]:
        if other == vl_name:
            continue
        entry = analyzer._competitor_entry(vl_name, other, root)
        competitors[other] = entry
        entries.append((other, root, entry, "competitor"))

    safe = analyzer.serialization_mode == "safe"
    gains: List[Tuple[PortId, float]] = []
    for port in ports[1:]:
        key = (vl_name, port)
        cached = analyzer._meeting_cache.get(key)
        if cached is None:
            # batch coordinators never ran a sweep themselves: discover
            # (and memoize) the structural meeting info on demand
            cached = analyzer._discover_meetings(vl_name, port, competitors)
            analyzer._meeting_cache[key] = cached
        added, readded, port_gain = cached
        gains.append((port, port_gain))
        for other in added:
            entry = analyzer._competitor_entry(vl_name, other, port)
            competitors[other] = entry
            entries.append((other, port, entry, "competitor"))
        if safe:
            for other in readded:
                entry = analyzer._competitor_entry(vl_name, other, port)
                competitors[(other, port)] = entry
                entries.append((other, port, entry, "re-meeting"))
    return entries, gains


def _workload_children(
    analyzer, entries, horizon: float, critical_instant: float, workload: float
) -> Tuple[Term, ...]:
    """Per-competitor charges at the critical instant, closed exactly.

    Each charge is the frames of one flow released early enough to be
    served before the studied packet (``count * C``), tagged with the
    input link the flow arrived through at its meeting port; an
    ``fp-residual`` child absorbs the (tiny) difference between the
    independently computed charges and the walk's accumulated workload
    so the children sum to the parent bit-exactly.
    """
    children: List[Term] = []
    for name, port, (c, period, offset), kind in entries:
        base, events = _flow_events(c, period, offset, horizon)
        count = interference_count(0.0, offset, period)
        charge = base
        for t, event_c in events:  # sorted ascending by construction
            if t <= critical_instant + _EPS:
                charge += event_c
                count += 1
            else:
                break
        upstream = analyzer._upstream.get((name, port))
        group = (
            f"{upstream[0]}->{upstream[1]}" if upstream is not None else "source"
        )
        detail = f"{kind}: {count} frame(s) x {c:.6f} us"
        children.append(
            Term(
                "competitor-charge",
                charge,
                port=port,
                group=group,
                detail=detail,
            )
        )
    residual = closing_residual([c.value_us for c in children], workload)
    if residual != 0.0:
        children.append(Term(FP_RESIDUAL, residual, group="workload"))
    return tuple(children)


def trajectory_provenance(analyzer, result) -> Dict[Tuple[str, int], Decomposition]:
    """Exact per-path decompositions of a Trajectory result.

    Requires the analyzer to have run with ``explain=True`` (so the
    final sweep's ``Smax`` snapshot and prefix bounds are available);
    every decomposition is checked before return.
    """
    bounds = getattr(analyzer, "_explain_bounds", None)
    snapshot = getattr(analyzer, "_explain_smax", None)
    if bounds is None or snapshot is None:
        raise ProvenanceError(
            "trajectory provenance needs an analyzer run with explain=True"
        )
    network = analyzer.network
    out: Dict[Tuple[str, int], Decomposition] = {}
    # the walk replay must read the exact Smax map the final sweep used
    live_smax = analyzer._smax
    analyzer._smax = snapshot
    try:
        for vl_name, path_index, node_path in network.flow_paths():
            ports = [(a, b) for a, b in zip(node_path, node_path[1:])]
            record = bounds[(vl_name, ports[-1])]
            entries, gains = _path_walk_state(analyzer, vl_name, ports)
            horizon = analyzer._root_horizon(ports[0])
            if horizon != record.busy_period_us:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: busy "
                    f"period {horizon!r} != recorded {record.busy_period_us!r}"
                )
            if len(entries) - 1 != record.n_competitors:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: "
                    f"{len(entries) - 1} competitors != recorded "
                    f"{record.n_competitors}"
                )

            terms: List[Term] = [
                Term(
                    "workload",
                    record.workload_us,
                    detail=f"busy period <= {horizon:.6f} us",
                    children=_workload_children(
                        analyzer,
                        entries,
                        horizon,
                        record.critical_instant_us,
                        record.workload_us,
                    ),
                )
            ]

            transition_acc = ExactAccumulator()
            for hop, port in enumerate(ports[1:], start=2):
                value = analyzer._port_max_c[port]
                transition_acc.add(value)
                terms.append(Term("counted-twice", value, hop=hop, port=port))
            if transition_acc.value != record.transition_us:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: "
                    f"transitions {transition_acc.value!r} != recorded "
                    f"{record.transition_us!r}"
                )
            for residual in transition_acc.residuals:
                terms.append(
                    Term(FP_RESIDUAL, residual, group="counted-twice")
                )

            latency_acc = ExactAccumulator()
            for hop, port in enumerate(ports, start=1):
                latency = network.node(port[0]).technological_latency_us
                latency_acc.add(latency)
                if latency != 0.0:
                    terms.append(
                        Term("node-latency", latency, hop=hop, port=port)
                    )
            if latency_acc.value != record.latency_us:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: "
                    f"latencies {latency_acc.value!r} != recorded "
                    f"{record.latency_us!r}"
                )
            for residual in latency_acc.residuals:
                terms.append(Term(FP_RESIDUAL, residual, group="node-latency"))

            gain_acc = ExactAccumulator()
            for hop, (port, port_gain) in enumerate(gains, start=2):
                gain_acc.add(port_gain)
                if port_gain != 0.0:
                    terms.append(
                        Term(
                            "serialization-gain", -port_gain, hop=hop, port=port
                        )
                    )
            if gain_acc.value != record.serialization_gain_us:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: gain "
                    f"{gain_acc.value!r} != recorded "
                    f"{record.serialization_gain_us!r}"
                )
            # the ledger carries -gain: negate the captured errors too
            # (negation is exact in IEEE arithmetic)
            for residual in gain_acc.residuals:
                terms.append(
                    Term(FP_RESIDUAL, -residual, group="serialization-gain")
                )

            # constant = (transitions + latencies) - gain, then
            # bound = (workload + constant) - t*, replayed exactly
            constant_acc = ExactAccumulator()
            constant_acc.add(record.transition_us)
            constant_acc.add(record.latency_us)
            constant_acc.add(-record.serialization_gain_us)
            for residual in constant_acc.residuals:
                terms.append(Term(FP_RESIDUAL, residual, group="constant"))

            total_acc = ExactAccumulator()
            total_acc.add(record.workload_us)
            total_acc.add(constant_acc.value)
            if record.critical_instant_us != 0.0:
                total_acc.add(-record.critical_instant_us)
                terms.append(
                    Term("release-offset", -record.critical_instant_us)
                )
            if total_acc.value != record.total_us:
                raise ProvenanceError(
                    f"trajectory replay of {vl_name}[{path_index}]: bound "
                    f"{total_acc.value!r} != recorded {record.total_us!r}"
                )
            for residual in total_acc.residuals:
                terms.append(Term(FP_RESIDUAL, residual, group="total"))

            decomposition = Decomposition(
                method="trajectory",
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                bound_us=record.total_us,
                terms=tuple(terms),
                hop_bounds_us=tuple(
                    bounds[(vl_name, port)].total_us for port in ports
                ),
            )
            decomposition.check()
            out[(vl_name, path_index)] = decomposition
    finally:
        analyzer._smax = live_smax
    return out
