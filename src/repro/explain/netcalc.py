"""Provenance recorder for the Network Calculus analyzer.

The NC propagation is a deterministic pure function of the
configuration, so the recorder works **post hoc**: given a finished
:class:`~repro.netcalc.results.NetworkCalculusResult` it replays the
bucket propagation (using the recorded per-port delays, which it
cross-checks against a fresh horizontal deviation bit for bit) and
splits every hop's delay bound into the paper's additive pieces:

``service-latency``
    The rate-latency server's latency ``T`` (switching latency plus
    the transmission tail, Sec. II-B).
``ingress-shaping`` / ``burst-delay``
    The queueing part of the hop bound against the *ungrouped*
    aggregate — the serialized source burst at hop 1, accumulated
    upstream bursts afterwards (the holistic-pessimism inflation
    ``b <- b + r * D`` the paper blames for NC's small-BAG behaviour).
``grouping-credit``
    What the input-link grouping technique removed at this hop
    (grouped minus ungrouped horizontal deviation, always <= 0 up to
    rounding).
``fp-residual``
    Exact rounding errors of the above splits — see
    :mod:`repro.obs.provenance`.  The path-level summation itself is
    ``math.fsum`` (correctly rounded), so it adds no residual: the
    per-hop splits are error-free transformations of each recorded
    port delay, hence the ledger's real-number sum *is* the real sum
    of the per-port delays, and ``fsum`` rounds both to the same
    float.

A post-hoc replay also covers every cache-hit path of the incremental
layer for free: provenance is *recomputed* from the (bit-identical)
cached result, never served stale.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.curves import RateLatency, horizontal_deviation
from repro.errors import ProvenanceError
from repro.netcalc.grouping import port_aggregate_curve
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.obs.provenance import (
    FP_RESIDUAL,
    Decomposition,
    Term,
    two_sum,
)

__all__ = ["netcalc_provenance"]

#: per-port replay record: (T, queueing, queueing residual,
#: grouping credit or None, credit residual)
_HopSplit = Tuple[float, float, float, "float | None", float]


def _replay_ports(analyzer, result) -> Dict[PortId, _HopSplit]:
    """Replay the propagation, splitting each port's recorded delay.

    Raises :class:`ProvenanceError` if any replayed horizontal
    deviation disagrees with the recorded per-port delay — the replay
    and the analyzer would have drifted apart.
    """
    network = analyzer.network
    order = topological_port_order(network)
    entering = analyzer.ingress_buckets()
    splits: Dict[PortId, _HopSplit] = {}
    for port_id in order:
        buckets = {
            name: entering[(name, port_id)]
            for name in sorted(network.vls_at_port(port_id))
        }
        recorded = result.ports[port_id].delay_us
        aggregate, _ = port_aggregate_curve(
            network, port_id, buckets, analyzer.grouping
        )
        port = network.output_port(*port_id)
        beta = RateLatency(rate=port.rate_bits_per_us, latency=port.latency_us)
        replayed = horizontal_deviation(aggregate, beta.curve())
        if replayed != recorded:
            raise ProvenanceError(
                f"NC replay of port {port_id[0]}->{port_id[1]} gives "
                f"{replayed!r}, result recorded {recorded!r}"
            )
        if analyzer.grouping:
            ungrouped, _ = port_aggregate_curve(network, port_id, buckets, False)
            h_ungrouped = horizontal_deviation(ungrouped, beta.curve())
        else:
            h_ungrouped = recorded
        latency = port.latency_us
        queueing, queue_residual = two_sum(h_ungrouped, -latency)
        if h_ungrouped == recorded:
            credit, credit_residual = None, 0.0
        else:
            credit, credit_residual = two_sum(recorded, -h_ungrouped)
        splits[port_id] = (
            latency, queueing, queue_residual, credit, credit_residual
        )
        # buckets downstream inflate by the recorded (== replayed) delay
        analyzer.propagate_port(entering, port_id, recorded)
    return splits


def netcalc_provenance(analyzer, result) -> Dict[Tuple[str, int], Decomposition]:
    """Exact per-path decompositions of a Network Calculus result.

    Keyed like ``result.paths``; every decomposition is
    :meth:`~repro.obs.provenance.Decomposition.check`-ed before return.
    """
    splits = _replay_ports(analyzer, result)
    out: Dict[Tuple[str, int], Decomposition] = {}
    for key, path in result.paths.items():
        delays = [result.ports[port_id].delay_us for port_id in path.port_ids]
        terms = []
        hop_bounds = []
        for hop, port_id in enumerate(path.port_ids, start=1):
            latency, queueing, queue_residual, credit, credit_residual = (
                splits[port_id]
            )
            hop_bounds.append(math.fsum(delays[:hop]))
            terms.append(
                Term("service-latency", latency, hop=hop, port=port_id)
            )
            queue_label = "ingress-shaping" if hop == 1 else "burst-delay"
            terms.append(Term(queue_label, queueing, hop=hop, port=port_id))
            if queue_residual != 0.0:
                terms.append(
                    Term(
                        FP_RESIDUAL, queue_residual,
                        hop=hop, port=port_id, group=queue_label,
                    )
                )
            if credit is not None:
                terms.append(
                    Term("grouping-credit", credit, hop=hop, port=port_id)
                )
                if credit_residual != 0.0:
                    terms.append(
                        Term(
                            FP_RESIDUAL, credit_residual,
                            hop=hop, port=port_id, group="grouping-credit",
                        )
                    )
        # total_us is math.fsum(per-port delays); the per-hop splits are
        # error-free, so the ledger needs no path-sum residual to conserve.
        replayed_total = math.fsum(delays)
        if replayed_total != path.total_us:
            raise ProvenanceError(
                f"NC path replay of {key[0]}[{key[1]}] sums per-port delays "
                f"to {replayed_total!r}, result recorded {path.total_us!r}"
            )
        decomposition = Decomposition(
            method="network_calculus",
            vl_name=path.vl_name,
            path_index=path.path_index,
            node_path=path.node_path,
            bound_us=path.total_us,
            terms=tuple(terms),
            hop_bounds_us=tuple(hop_bounds),
        )
        decomposition.check()
        out[key] = decomposition
    return out
