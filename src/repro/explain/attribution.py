"""Cross-method attribution: *why* does one method win on a path?

Given both ledgers of a path, the attribution expresses the signed gap

    ``gap = WCNC bound - trajectory bound``

(positive: the trajectory approach is tighter) as a sum of paired
contributions — each pairing the NC term with its trajectory
counterpart, so the number says how much that mechanism moves the gap:

``burst-accumulation``
    NC's queueing delays (ingress shaping + accumulated bursts) minus
    the trajectory busy-period workload net of the release offset.
    Dominates positively on most paths: burst inflation is NC's
    pessimism source (paper Sec. V, Fig. 8).
``counted-twice``
    Minus the trajectory's per-transition largest-frame terms — pure
    trajectory pessimism, so it always pushes the gap negative.  The
    paper's Sec. V explanation of the ~9 % of paths where NC wins.
``latency-mismatch``
    NC service latencies minus trajectory node latencies (zero when
    both models charge identical technological latencies).
``grouping-credit``
    NC's input-link grouping credit (<= 0: it helps NC).
``serialization-gain``
    Plus the trajectory serialization credit (> 0: it helps the
    trajectory bound).
``fp-residual``
    The netted rounding micro-terms of both ledgers.

The **dominant term** of a path is the largest-magnitude contribution
whose sign matches the gap — the mechanism that actually drives the
winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ProvenanceError
from repro.network.port import PortId
from repro.obs.provenance import FP_RESIDUAL, Decomposition

__all__ = [
    "HopAlignment",
    "PathAttribution",
    "ExplanationSummary",
    "attribute_paths",
    "summarize_attributions",
]

#: Two bounds within this are a tie (matches PathComparison's epsilon).
_TIE_EPS = 1e-9


@dataclass(frozen=True)
class HopAlignment:
    """Both methods' bound increment at one hop of a path."""

    hop: int
    port: PortId
    network_calculus_us: float
    trajectory_us: float


@dataclass(frozen=True)
class PathAttribution:
    """The aligned explanation of one path's NC<->trajectory gap."""

    vl_name: str
    path_index: int
    node_path: Tuple[str, ...]
    network_calculus_us: float
    trajectory_us: float
    gap_us: float
    winner: str  # "trajectory" | "network_calculus" | "tie"
    contributions: Tuple[Tuple[str, float], ...]
    dominant_term: str
    hops: Tuple[HopAlignment, ...]

    def contribution(self, name: str) -> float:
        for label, value in self.contributions:
            if label == name:
                return value
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "vl_name": self.vl_name,
            "path_index": self.path_index,
            "node_path": list(self.node_path),
            "network_calculus_us": self.network_calculus_us,
            "trajectory_us": self.trajectory_us,
            "gap_us": self.gap_us,
            "winner": self.winner,
            "dominant_term": self.dominant_term,
            "contributions": {label: value for label, value in self.contributions},
            "hops": [
                {
                    "hop": hop.hop,
                    "port": f"{hop.port[0]}->{hop.port[1]}",
                    "network_calculus_us": hop.network_calculus_us,
                    "trajectory_us": hop.trajectory_us,
                }
                for hop in self.hops
            ],
        }


@dataclass(frozen=True)
class ExplanationSummary:
    """Aggregate view over every attributed path of a configuration."""

    n_paths: int
    nc_wins: int
    trajectory_wins: int
    ties: int
    max_abs_residual_us: float
    conservation_failures: int
    dominant_on_nc_wins: Tuple[Tuple[str, int], ...]
    dominant_on_trajectory_wins: Tuple[Tuple[str, int], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_paths": self.n_paths,
            "nc_wins": self.nc_wins,
            "trajectory_wins": self.trajectory_wins,
            "ties": self.ties,
            "max_abs_residual_us": self.max_abs_residual_us,
            "conservation_failures": self.conservation_failures,
            "dominant_on_nc_wins": {k: v for k, v in self.dominant_on_nc_wins},
            "dominant_on_trajectory_wins": {
                k: v for k, v in self.dominant_on_trajectory_wins
            },
        }


def _attribute_one(
    nc: Decomposition, trajectory: Decomposition
) -> PathAttribution:
    gap = nc.bound_us - trajectory.bound_us
    if gap > _TIE_EPS:
        winner = "trajectory"
    elif gap < -_TIE_EPS:
        winner = "network_calculus"
    else:
        winner = "tie"

    nc_queueing = nc.total("ingress-shaping", "burst-delay")
    nc_latency = nc.total("service-latency")
    nc_credit = nc.total("grouping-credit")
    nc_residual = nc.total(FP_RESIDUAL)
    traj_workload = trajectory.total("workload", "release-offset")
    traj_transitions = trajectory.total("counted-twice")
    traj_latency = trajectory.total("node-latency")
    traj_gain = trajectory.total("serialization-gain")  # <= 0 in the ledger
    traj_residual = trajectory.total(FP_RESIDUAL)

    contributions = (
        ("burst-accumulation", nc_queueing - traj_workload),
        ("counted-twice", -traj_transitions),
        ("latency-mismatch", nc_latency - traj_latency),
        ("grouping-credit", nc_credit),
        ("serialization-gain", -traj_gain),
        (FP_RESIDUAL, nc_residual - traj_residual),
    )
    # the pairing is exhaustive: it must re-express the gap exactly
    # (up to the correctly-rounded regrouping of fsum)
    regrouped = math.fsum(value for _, value in contributions)
    if not math.isclose(regrouped, gap, rel_tol=1e-9, abs_tol=1e-6):
        raise ProvenanceError(
            f"attribution of {nc.vl_name}[{nc.path_index}] regroups the gap "
            f"to {regrouped!r}, expected {gap!r}"
        )

    dominant = "none"
    if winner != "tie":
        best = 0.0
        for label, value in contributions:
            if label == FP_RESIDUAL:
                continue
            if value * gap > 0 and abs(value) > best:
                best = abs(value)
                dominant = label

    n_hops = len(nc.hop_bounds_us)
    hops: List[HopAlignment] = []
    ports = tuple(zip(nc.node_path, nc.node_path[1:]))
    previous_nc = previous_traj = 0.0
    for hop in range(n_hops):
        nc_cum = nc.hop_bounds_us[hop]
        traj_cum = trajectory.hop_bounds_us[hop]
        hops.append(
            HopAlignment(
                hop=hop + 1,
                port=ports[hop],
                network_calculus_us=nc_cum - previous_nc,
                trajectory_us=traj_cum - previous_traj,
            )
        )
        previous_nc, previous_traj = nc_cum, traj_cum

    return PathAttribution(
        vl_name=nc.vl_name,
        path_index=nc.path_index,
        node_path=nc.node_path,
        network_calculus_us=nc.bound_us,
        trajectory_us=trajectory.bound_us,
        gap_us=gap,
        winner=winner,
        contributions=contributions,
        dominant_term=dominant,
        hops=tuple(hops),
    )


def attribute_paths(
    nc_provenance: Dict[Tuple[str, int], Decomposition],
    trajectory_provenance: Dict[Tuple[str, int], Decomposition],
) -> Dict[Tuple[str, int], PathAttribution]:
    """Attribute every path present in both provenance maps."""
    if set(nc_provenance) != set(trajectory_provenance):
        raise ProvenanceError(
            "the two provenance maps cover different VL paths"
        )
    return {
        key: _attribute_one(nc_provenance[key], trajectory_provenance[key])
        for key in sorted(nc_provenance)
    }


def summarize_attributions(
    attributions: Dict[Tuple[str, int], PathAttribution],
    decompositions: Tuple[Dict[Tuple[str, int], Decomposition], ...] = (),
) -> ExplanationSummary:
    """Winner counts, dominant-term histograms and residual extremes."""
    nc_wins = trajectory_wins = ties = 0
    nc_histogram: Dict[str, int] = {}
    trajectory_histogram: Dict[str, int] = {}
    for attribution in attributions.values():
        if attribution.winner == "network_calculus":
            nc_wins += 1
            nc_histogram[attribution.dominant_term] = (
                nc_histogram.get(attribution.dominant_term, 0) + 1
            )
        elif attribution.winner == "trajectory":
            trajectory_wins += 1
            trajectory_histogram[attribution.dominant_term] = (
                trajectory_histogram.get(attribution.dominant_term, 0) + 1
            )
        else:
            ties += 1
    max_residual = 0.0
    failures = 0
    for provenance in decompositions:
        for decomposition in provenance.values():
            max_residual = max(max_residual, decomposition.max_abs_residual_us)
            if not decomposition.conserved:
                failures += 1

    def ranked(histogram: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            sorted(histogram.items(), key=lambda item: (-item[1], item[0]))
        )

    return ExplanationSummary(
        n_paths=len(attributions),
        nc_wins=nc_wins,
        trajectory_wins=trajectory_wins,
        ties=ties,
        max_abs_residual_us=max_residual,
        conservation_failures=failures,
        dominant_on_nc_wins=ranked(nc_histogram),
        dominant_on_trajectory_wins=ranked(trajectory_histogram),
    )
