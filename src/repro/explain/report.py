"""Rendering of bound explanations: text, JSON, HTML.

All three renderers are pure functions of the :class:`Explanation`
(no timestamps, no machine identity, deterministic ordering and float
formatting), so output is byte-identical across ``--jobs`` settings
and across cold vs incremental runs — which the test suite enforces.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional, Tuple

from repro.obs.provenance import Decomposition, Term

__all__ = ["render_explanation", "FORMATS"]

FORMATS = ("text", "json", "html")


def _flow(key: Tuple[str, int]) -> str:
    return f"{key[0]}[{key[1]}]"


def _select_keys(explanation, vl: Optional[str], path: Optional[int], top: int):
    keys = sorted(explanation.attributions)
    if vl is not None:
        keys = [key for key in keys if key[0] == vl]
        if not keys:
            from repro.errors import AnalysisError

            raise AnalysisError(f"unknown VL {vl!r} (no analyzed path has it)")
    if path is not None:
        keys = [key for key in keys if key[1] == path]
        if not keys:
            from repro.errors import AnalysisError

            raise AnalysisError(
                f"no analyzed path has index {path}"
                + (f" for VL {vl!r}" if vl is not None else "")
            )
    # most interesting first: largest |gap|, then deterministic key order
    keys.sort(key=lambda key: (-abs(explanation.attributions[key].gap_us), key))
    if top:
        keys = keys[:top]
    return keys


def _term_line(term: Term, indent: str) -> List[str]:
    where = ""
    if term.hop is not None and term.port is not None:
        where = f"hop {term.hop} {term.port[0]}->{term.port[1]}  "
    elif term.port is not None:
        where = f"{term.port[0]}->{term.port[1]}  "
    extra = []
    if term.group is not None:
        extra.append(f"via {term.group}")
    if term.detail is not None:
        extra.append(term.detail)
    suffix = f"   ({'; '.join(extra)})" if extra else ""
    lines = [
        f"{indent}{where}{term.label:<20}{term.value_us:>18.6f}{suffix}"
    ]
    for child in term.children:
        lines.extend(_term_line(child, indent + "  "))
    return lines


def _ledger_lines(decomposition: Decomposition, indent: str) -> List[str]:
    lines: List[str] = []
    for term in decomposition.terms:
        lines.extend(_term_line(term, indent))
    status = "exact" if decomposition.conserved else "VIOLATED"
    lines.append(
        f"{indent}{'sum':<20}{decomposition.term_sum_us():>18.6f}   "
        f"(conservation {status}, bound {decomposition.bound_us:.6f})"
    )
    return lines


def _render_text(explanation, keys) -> str:
    summary = explanation.summary
    lines = [
        f"bound provenance — {explanation.network.name} "
        f"({len(explanation.network.virtual_links)} VLs, "
        f"{summary.n_paths} paths)",
        f"trajectory tighter on {summary.trajectory_wins}, "
        f"network calculus tighter on {summary.nc_wins}, "
        f"ties {summary.ties}",
    ]
    for title, histogram in (
        ("trajectory wins", summary.dominant_on_trajectory_wins),
        ("network-calculus wins", summary.dominant_on_nc_wins),
    ):
        if histogram:
            ranked = ", ".join(f"{name} x{count}" for name, count in histogram)
            lines.append(f"dominant terms where {title}: {ranked}")
    lines.append(
        f"conservation: {2 * summary.n_paths - summary.conservation_failures}"
        f"/{2 * summary.n_paths} ledgers exact "
        f"(max |fp-residual| {summary.max_abs_residual_us:.3e} us)"
    )
    for key in keys:
        attribution = explanation.attributions[key]
        nc = explanation.netcalc.provenance[key]
        trajectory = explanation.trajectory.provenance[key]
        lines.append("")
        lines.append(
            f"== {_flow(key)}  {' -> '.join(attribution.node_path)}"
        )
        lines.append(
            f"  WCNC {attribution.network_calculus_us:.6f} us | "
            f"trajectory {attribution.trajectory_us:.6f} us | "
            f"winner {attribution.winner} "
            f"(gap {attribution.gap_us:+.6f} us)"
        )
        if attribution.dominant_term != "none":
            lines.append(
                f"  dominant term: {attribution.dominant_term} "
                f"({attribution.contribution(attribution.dominant_term):+.6f} us)"
            )
        lines.append(
            f"  {'contribution':<22}{'to gap (us)':>16}"
        )
        for label, value in attribution.contributions:
            lines.append(f"    {label:<20}{value:>16.6f}")
        lines.append(
            f"  {'hop':<4}{'port':<16}{'NC Δ (us)':>14}{'Traj Δ (us)':>14}"
        )
        for hop in attribution.hops:
            lines.append(
                f"  {hop.hop:<4}{hop.port[0] + '->' + hop.port[1]:<16}"
                f"{hop.network_calculus_us:>14.6f}{hop.trajectory_us:>14.6f}"
            )
        lines.append("  network-calculus ledger:")
        lines.extend(_ledger_lines(nc, "    "))
        lines.append("  trajectory ledger:")
        lines.extend(_ledger_lines(trajectory, "    "))
    return "\n".join(lines) + "\n"


def _render_json(explanation, keys) -> str:
    payload: Dict[str, object] = {
        "config": explanation.network.name,
        "summary": explanation.summary.to_dict(),
        "paths": [
            {
                "flow": _flow(key),
                "attribution": explanation.attributions[key].to_dict(),
                "network_calculus": explanation.netcalc.provenance[key].to_dict(),
                "trajectory": explanation.trajectory.provenance[key].to_dict(),
            }
            for key in keys
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _html_ledger(decomposition: Decomposition) -> str:
    rows = []

    def emit(term: Term, depth: int) -> None:
        pad = "&nbsp;" * (4 * depth)
        where = (
            f"{term.port[0]}-&gt;{term.port[1]}" if term.port is not None else ""
        )
        hop = str(term.hop) if term.hop is not None else ""
        note = _html.escape(
            "; ".join(x for x in (term.group, term.detail) if x)
        )
        rows.append(
            f"<tr><td>{pad}{_html.escape(term.label)}</td>"
            f"<td>{hop}</td><td>{where}</td>"
            f"<td class='num'>{term.value_us:.6f}</td>"
            f"<td>{note}</td></tr>"
        )
        for child in term.children:
            emit(child, depth + 1)

    for term in decomposition.terms:
        emit(term, 0)
    status = "exact" if decomposition.conserved else "VIOLATED"
    rows.append(
        f"<tr class='total'><td>sum ({status})</td><td></td><td></td>"
        f"<td class='num'>{decomposition.term_sum_us():.6f}</td><td></td></tr>"
    )
    return (
        "<table><thead><tr><th>term</th><th>hop</th><th>port</th>"
        "<th>us</th><th>notes</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _render_html(explanation, keys) -> str:
    summary = explanation.summary
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>bound provenance — "
        f"{_html.escape(explanation.network.name)}</title>",
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse;margin:0.5em 0}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
        "td.num{text-align:right}tr.total{font-weight:bold}"
        "h2{margin-top:1.5em}</style></head><body>",
        f"<h1>bound provenance — "
        f"{_html.escape(explanation.network.name)}</h1>",
        f"<p>{summary.n_paths} paths: trajectory tighter on "
        f"{summary.trajectory_wins}, network calculus tighter on "
        f"{summary.nc_wins}, ties {summary.ties}.<br>"
        f"conservation: {2 * summary.n_paths - summary.conservation_failures}"
        f"/{2 * summary.n_paths} ledgers exact "
        f"(max |fp-residual| {summary.max_abs_residual_us:.3e} us)</p>",
    ]
    for key in keys:
        attribution = explanation.attributions[key]
        parts.append(
            f"<h2>{_html.escape(_flow(key))} &mdash; "
            f"{_html.escape(' -> '.join(attribution.node_path))}</h2>"
        )
        parts.append(
            f"<p>WCNC {attribution.network_calculus_us:.6f} us, "
            f"trajectory {attribution.trajectory_us:.6f} us, winner "
            f"<b>{_html.escape(attribution.winner)}</b> "
            f"(gap {attribution.gap_us:+.6f} us); dominant term "
            f"<b>{_html.escape(attribution.dominant_term)}</b></p>"
        )
        parts.append(
            "<table><thead><tr><th>contribution</th><th>to gap (us)</th>"
            "</tr></thead><tbody>"
            + "".join(
                f"<tr><td>{_html.escape(label)}</td>"
                f"<td class='num'>{value:+.6f}</td></tr>"
                for label, value in attribution.contributions
            )
            + "</tbody></table>"
        )
        parts.append("<h3>network-calculus ledger</h3>")
        parts.append(_html_ledger(explanation.netcalc.provenance[key]))
        parts.append("<h3>trajectory ledger</h3>")
        parts.append(_html_ledger(explanation.trajectory.provenance[key]))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_explanation(
    explanation,
    fmt: str = "text",
    vl: Optional[str] = None,
    path: Optional[int] = None,
    top: int = 0,
) -> str:
    """Render an :class:`~repro.explain.Explanation` in one format.

    ``vl`` / ``path`` filter the detailed per-path sections (the
    summary always covers every path); ``top`` keeps only the N paths
    with the largest |gap|.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}")
    keys = _select_keys(explanation, vl, path, top)
    if fmt == "json":
        return _render_json(explanation, keys)
    if fmt == "html":
        return _render_html(explanation, keys)
    return _render_text(explanation, keys)
