"""Bound provenance: explain *why* each worst-case bound is what it is.

The package decomposes every reported end-to-end bound into the additive
terms of the underlying method (:mod:`repro.explain.netcalc`,
:mod:`repro.explain.trajectory`), each ledger summing to its bound
bit-exactly (:mod:`repro.obs.provenance`), aligns the two ledgers per
path to name the mechanism driving the NC<->trajectory gap
(:mod:`repro.explain.attribution`), and renders the whole explanation
as text, JSON or HTML (:mod:`repro.explain.report` — the ``afdx
explain`` subcommand).

Entry point: :func:`explain_network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.results import AnalysisResult
from repro.explain.attribution import (
    ExplanationSummary,
    PathAttribution,
    attribute_paths,
    summarize_attributions,
)
from repro.explain.report import FORMATS, render_explanation
from repro.netcalc.results import NetworkCalculusResult
from repro.network.topology import Network
from repro.trajectory.results import TrajectoryResult

__all__ = [
    "Explanation",
    "explain_network",
    "render_explanation",
    "FORMATS",
]


@dataclass
class Explanation:
    """Everything ``afdx explain`` knows about one configuration.

    ``netcalc.provenance`` / ``trajectory.provenance`` hold the
    per-path :class:`~repro.obs.provenance.Decomposition` ledgers;
    ``attributions`` the per-path cross-method gap attributions;
    ``summary`` the aggregate winner/dominant-term/conservation view.
    """

    network: Network
    comparison: AnalysisResult
    netcalc: NetworkCalculusResult
    trajectory: TrajectoryResult
    attributions: Dict[Tuple[str, int], PathAttribution]
    summary: ExplanationSummary


def explain_network(
    network: Network,
    grouping: bool = True,
    serialization: object = True,
    refine_smax: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    collect_stats: bool = False,
    progress=None,
    trajectory_kernel: Optional[str] = None,
) -> Explanation:
    """Run both analyses with provenance recording and attribute gaps.

    Mirrors the combined CLI analysis (same analyzers, same seeding, so
    the bounds are bit-identical to an unexplained ``afdx analyze``
    run) and is deterministic across ``jobs`` and across cold vs
    ``cache_dir``-warmed incremental runs.
    """
    from repro.batch.analyzer import BatchAnalyzer
    from repro.core.combined import build_comparison
    from repro.trajectory.timing import seed_smax_from_netcalc

    batch = BatchAnalyzer(
        network,
        jobs=jobs,
        grouping=grouping,
        serialization=serialization,
        refine_smax=refine_smax,
        collect_stats=collect_stats,
        progress=progress,
        incremental=cache_dir is not None,
        cache_dir=cache_dir,
        explain=True,
        trajectory_kernel=trajectory_kernel,
    )
    nc_result = batch.network_calculus()
    # jobs>1: reuse our NC run as the trajectory seed exactly like the
    # combined batch path (the sequential path recomputes a grouped
    # seed itself, so only a grouped result may be forwarded)
    seed = (
        seed_smax_from_netcalc(network, nc_result)
        if batch.jobs > 1 and grouping
        else None
    )
    trajectory_result = batch.trajectory(smax_seed=seed)
    comparison = build_comparison(nc_result, trajectory_result)
    assert nc_result.provenance is not None
    assert trajectory_result.provenance is not None
    attributions = attribute_paths(
        nc_result.provenance, trajectory_result.provenance
    )
    summary = summarize_attributions(
        attributions, (nc_result.provenance, trajectory_result.provenance)
    )
    return Explanation(
        network=network,
        comparison=comparison,
        netcalc=nc_result,
        trajectory=trajectory_result,
        attributions=attributions,
        summary=summary,
    )
