"""Result containers for the Network Calculus analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.port import PortId

__all__ = ["PortAnalysis", "PathBound", "NetworkCalculusResult"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class PortAnalysis:
    """Worst-case figures for one output port.

    Attributes
    ----------
    port_id:
        The ``(owner, target)`` port.
    delay_us:
        FIFO delay bound (horizontal deviation) — applies to every
        frame crossing the port, queueing + transmission + latency.
    backlog_bits:
        Buffer bound (vertical deviation); sizing the output FIFO to at
        least this many bits guarantees no frame loss (Sec. II-B).
    utilization:
        Long-term utilization of the port.
    n_flows / n_groups:
        Number of VLs crossing the port and number of input-link groups
        they were aggregated into (``n_groups == n_flows`` when
        grouping is disabled or no link is shared).
    """

    port_id: PortId
    delay_us: float
    backlog_bits: float
    utilization: float
    n_flows: int
    n_groups: int


@dataclass(frozen=True)
class PathBound:
    """End-to-end delay bound for one VL path.

    ``total_us`` is the sum of the per-port delay bounds along the
    path's output ports, i.e. the bound from frame release at the
    source ES to complete reception by the destination ES.
    """

    vl_name: str
    path_index: int
    node_path: Tuple[str, ...]
    port_ids: Tuple[PortId, ...]
    per_port_delay_us: Tuple[float, ...]
    total_us: float


@dataclass
class NetworkCalculusResult:
    """Full outcome of a Network Calculus run.

    Attributes
    ----------
    grouping:
        Whether the grouping (serialization) technique was applied.
    ports:
        Per-port analyses, keyed by port id.
    paths:
        Per-VL-path end-to-end bounds, keyed by ``(vl_name, path_index)``.
    stats:
        Observability snapshot (counters / timers / phase spans, see
        :mod:`repro.obs`) when the analysis ran with
        ``collect_stats=True``; None otherwise.
    provenance:
        Per-path bound :class:`~repro.obs.provenance.Decomposition`
        ledgers, keyed like ``paths``, when the analysis ran with
        ``explain=True``; None otherwise.  Never cached: always
        recomputed from the (possibly cache-served) result.
    """

    grouping: bool
    ports: Dict[PortId, PortAnalysis] = field(default_factory=dict)
    paths: Dict[FlowPathKey, PathBound] = field(default_factory=dict)
    stats: Optional[Dict[str, object]] = None
    provenance: Optional[Dict[FlowPathKey, object]] = None

    def bound_us(self, vl_name: str, path_index: int = 0) -> float:
        """End-to-end bound of one VL path, in microseconds."""
        return self.paths[(vl_name, path_index)].total_us

    def path_bounds(self) -> List[PathBound]:
        """All path bounds, in deterministic (vl, index) order."""
        return [self.paths[key] for key in sorted(self.paths)]

    def worst_path(self) -> PathBound:
        """The path with the largest end-to-end bound."""
        if not self.paths:
            raise ValueError("result contains no paths")
        return max(self.paths.values(), key=lambda p: p.total_us)

    def total_buffer_bits(self) -> float:
        """Sum of all port backlog bounds (network-wide buffer budget)."""
        return math.fsum(p.backlog_bits for p in self.ports.values())
