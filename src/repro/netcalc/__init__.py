"""Deterministic Network Calculus (WCNC) analysis of AFDX networks.

This is the certification-grade method the paper takes as its baseline
(Sec. II-B): each Virtual Link enters the network constrained by the
leaky bucket ``(s_max, s_max / BAG)``; each output port offers a
rate-latency service curve; ports are analyzed in feed-forward
(topological) order; and the per-port FIFO delay bound is the
horizontal deviation between the port's aggregate arrival curve and its
service curve.  The *grouping* technique — capping every set of flows
that shares an input link by that link's shaping curve — is implemented
and enabled by default, as in the paper's tool.

Entry point: :class:`NetworkCalculusAnalyzer` (or the
:func:`analyze_network_calculus` convenience wrapper).
"""

from repro.netcalc.analyzer import NetworkCalculusAnalyzer, analyze_network_calculus
from repro.netcalc.grouping import arrival_groups, group_arrival_curve
from repro.netcalc.priority import StaticPriorityAnalyzer, analyze_static_priority
from repro.netcalc.results import NetworkCalculusResult, PathBound, PortAnalysis

__all__ = [
    "NetworkCalculusAnalyzer",
    "analyze_network_calculus",
    "StaticPriorityAnalyzer",
    "analyze_static_priority",
    "NetworkCalculusResult",
    "PortAnalysis",
    "PathBound",
    "arrival_groups",
    "group_arrival_curve",
]
