"""Feed-forward Network Calculus propagation over output ports.

The analysis follows the certification methodology referenced by the
paper (Grieu; Frances, Fraboul & Grieu; Charara et al.):

1. validate the configuration and order the used output ports
   topologically (static AFDX routing is feed-forward);
2. give every VL its ingress leaky bucket
   ``(burst = s_max, rate = s_max / BAG)`` at its source ES port;
3. at each port, build the aggregate arrival curve — grouped by input
   link when grouping is enabled — and bound the FIFO delay by the
   horizontal deviation against the port's rate-latency service curve;
4. propagate each flow downstream with its burst inflated by the local
   delay bound (``b <- b + r * D``);
5. the end-to-end bound of a VL path is the sum of its per-port delay
   bounds.

Step 4 is the holistic-pessimism mechanism the paper discusses: the
inflation ``r * D`` grows when BAG shrinks, which is why NC bounds
degrade for small BAGs (Fig. 8) while the Trajectory approach does not.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.curves import LeakyBucket, RateLatency, horizontal_deviation, vertical_deviation
from repro.errors import UnstableNetworkError
from repro.netcalc.grouping import port_aggregate_curve
from repro.netcalc.results import NetworkCalculusResult, PathBound, PortAnalysis
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.obs.costmodel import netcalc_cost_ledger
from repro.obs.instrument import OFF, Instrumentation
from repro.obs.logging import get_logger, kv

__all__ = ["NetworkCalculusAnalyzer", "analyze_network_calculus"]

_LOG = get_logger("netcalc")


class NetworkCalculusAnalyzer:
    """Computes WCNC end-to-end delay bounds for every VL path.

    Parameters
    ----------
    network:
        The configuration to analyze (not mutated).
    grouping:
        Apply the input-link grouping technique (default True, matching
        the tool used in the paper).
    frame_overhead_bytes:
        Extra per-frame wire bytes (preamble + IFG) to add on top of
        ``s_max``; the paper works with bare Ethernet frame sizes, so
        the default is 0.
    collect_stats:
        Record per-phase spans, counters and timers (:mod:`repro.obs`)
        and attach them to the result's ``stats`` field.  Off by
        default: the uninstrumented run is bit-identical to the
        pre-observability analyzer.
    progress:
        Optional ``callable(phase, done, total)`` invoked during the
        port propagation of large configurations.
    incremental:
        Serve per-port analyses from a content-addressed
        :class:`~repro.incremental.cache.BoundCache` keyed by Merkle
        dependency fingerprints (:mod:`repro.incremental.fingerprint`).
        A hit is bit-identical to recomputation by construction — the
        fingerprint covers every input of :meth:`analyze_port` — so
        results are unchanged; only repeated analyses of near-identical
        configurations get faster.
    cache:
        The cache to use when ``incremental`` (shared by the
        :class:`~repro.incremental.delta.DeltaAnalyzer` across edits
        and analyzers); defaults to the process-wide cache.  Passing a
        cache implies ``incremental=True``.
    explain:
        Attach per-path bound provenance ledgers
        (:func:`repro.explain.netcalc.netcalc_provenance`) to the
        result.  The bounds themselves are bit-identical either way:
        NC provenance is recomputed post hoc from the finished result —
        including cache-served results, so it is never stale.
    """

    def __init__(
        self,
        network: Network,
        grouping: bool = True,
        frame_overhead_bytes: float = 0.0,
        collect_stats: bool = False,
        progress=None,
        incremental: bool = False,
        cache=None,
        explain: bool = False,
    ):
        if frame_overhead_bytes < 0:
            raise ValueError(f"frame overhead must be >= 0, got {frame_overhead_bytes}")
        self.network = network
        self.grouping = grouping
        self.frame_overhead_bits = frame_overhead_bytes * 8.0
        self.incremental = incremental or cache is not None
        self.explain = explain
        self._cache = cache
        self._fingerprints: "Dict[PortId, str] | None" = None
        self._obs = Instrumentation.create(collect_stats, progress)
        self._result: "NetworkCalculusResult | None" = None

    def _resolve_cache(self):
        """The bound cache, or None when not incremental (lazy import)."""
        if not self.incremental:
            return None
        if self._cache is None:
            from repro.incremental.cache import default_cache

            self._cache = default_cache()
        return self._cache

    def result_fingerprint(self) -> str:
        """Digest of the whole analysis' inputs (network + parameters)."""
        from repro.incremental.fingerprint import network_fingerprint, stable_digest

        return stable_digest(
            "ncresult",
            network_fingerprint(self.network),
            self.grouping,
            self.frame_overhead_bits,
        )

    def port_fingerprints(self) -> Dict[PortId, str]:
        """Merkle dependency digests of every used port (computed once)."""
        if self._fingerprints is None:
            from repro.incremental.fingerprint import netcalc_port_fingerprints

            self._fingerprints = netcalc_port_fingerprints(
                self.network, self.grouping, self.frame_overhead_bits
            )
        return self._fingerprints

    def analyze_port_cached(
        self, port_id: PortId, buckets: "Dict[str, LeakyBucket]"
    ) -> PortAnalysis:
        """:meth:`analyze_port` through the bound cache (if incremental).

        The batch workers' entry point: falls back to a plain
        :meth:`analyze_port` when the analyzer is not incremental.
        """
        cache = self._resolve_cache()
        if cache is None:
            return self.analyze_port(port_id, buckets)
        fingerprint = self.port_fingerprints()[port_id]
        analysis = cache.get("nc.port", fingerprint)
        if analysis is None:
            analysis = self.analyze_port(port_id, buckets)
            cache.put("nc.port", fingerprint, analysis)
        return analysis

    # ------------------------------------------------------------------

    def ingress_buckets(self) -> Dict[Tuple[str, PortId], LeakyBucket]:
        """Every flow's leaky bucket at its source ES output port.

        The initial state of the propagation map ``(flow, port) ->
        bucket when entering that port's queue``; :meth:`propagate_port`
        extends it one analyzed port at a time.
        """
        entering: Dict[Tuple[str, PortId], LeakyBucket] = {}
        for name, vl in self.network.virtual_links.items():
            first_port = (vl.source, vl.paths[0][1])
            entering[(name, first_port)] = LeakyBucket(
                rate=(vl.s_max_bits + self.frame_overhead_bits) / vl.bag_us,
                burst=vl.s_max_bits + self.frame_overhead_bits,
            )
        return entering

    def analyze_port(
        self, port_id: PortId, buckets: Dict[str, LeakyBucket]
    ) -> PortAnalysis:
        """Bound one output port given its flows' entering buckets.

        Pure with respect to analyzer state — only ``network``,
        ``grouping`` and the passed buckets matter — which is what lets
        the batch engine fan one propagation level's ports across
        worker processes.

        Raises
        ------
        UnstableNetworkError
            When the aggregate long-term rate exceeds the link rate.
        """
        network = self.network
        aggregate, n_groups = port_aggregate_curve(
            network, port_id, buckets, self.grouping
        )
        port = network.output_port(*port_id)
        beta = RateLatency(rate=port.rate_bits_per_us, latency=port.latency_us)
        delay = horizontal_deviation(aggregate, beta.curve())
        if math.isinf(delay):
            raise UnstableNetworkError(
                f"no finite delay bound at port {port}: aggregate long-term rate "
                f"{aggregate.final_slope:.3f} bits/us exceeds the link rate "
                f"{port.rate_bits_per_us:.3f}"
            )
        backlog = vertical_deviation(aggregate, beta.curve())
        return PortAnalysis(
            port_id=port_id,
            delay_us=delay,
            backlog_bits=backlog,
            utilization=network.port_utilization(port_id),
            n_flows=len(buckets),
            n_groups=n_groups,
        )

    def propagate_port(
        self,
        entering: Dict[Tuple[str, PortId], LeakyBucket],
        port_id: PortId,
        delay: float,
    ) -> int:
        """Burst-inflate every flow of ``port_id`` into its next queues.

        Returns the number of flows propagated (for metrics).
        """
        network = self.network
        flows = network.vls_at_port(port_id)
        for name in sorted(flows):
            out_bucket = entering[(name, port_id)].delayed(delay)
            for path in network.vl(name).paths:
                ports = list(zip(path, path[1:]))
                for pos, pid in enumerate(ports):
                    if pid == port_id and pos + 1 < len(ports):
                        entering[(name, ports[pos + 1])] = out_bucket
        return len(flows)

    def finalize_paths(
        self,
        result: NetworkCalculusResult,
        port_delay: Dict[PortId, float],
    ) -> None:
        """Fill ``result.paths`` by summing per-port delays along each path.

        Shared by :meth:`analyze` and the batch coordinator, which
        produces ``port_delay`` from level-parallel workers.
        """
        for vl_name, path_index, node_path in self.network.flow_paths():
            port_ids = tuple((a, b) for a, b in zip(node_path, node_path[1:]))
            delays = tuple(port_delay[pid] for pid in port_ids)
            result.paths[(vl_name, path_index)] = PathBound(
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                port_ids=port_ids,
                per_port_delay_us=delays,
                total_us=math.fsum(delays),
            )

    def analyze(self) -> NetworkCalculusResult:
        """Run the full propagation and return (and cache) the result."""
        if self._result is not None:
            return self._result
        network = self.network
        obs = self._obs

        result_cache = self._resolve_cache()
        result_fp: "str | None" = None
        if result_cache is not None:
            with obs.tracer.span("netcalc.result_probe"):
                result_fp = self.result_fingerprint()
                cached = result_cache.get("nc.result", result_fp)
            if cached is not None:
                # shallow copy: callers may attach stats without
                # touching the cached object
                result = NetworkCalculusResult(
                    grouping=cached.grouping,
                    ports=dict(cached.ports),
                    paths=dict(cached.paths),
                )
                if obs.enabled:
                    obs.metrics.counter("netcalc.result_cache_hit", 1)
                    # the ledger is a pure function of the (cached)
                    # result, so cache-served runs get identical
                    # deterministic sections for free; the hit itself
                    # is an explicit cache entry
                    ledger = netcalc_cost_ledger(result)
                    ledger.record_cache("result", 1, 0)
                    stats = obs.export()
                    stats["cost"] = ledger.to_dict()
                    result.stats = stats
                _LOG.debug(
                    "netcalc result cache hit %s", kv(paths=len(result.paths))
                )
                if self.explain:
                    with obs.tracer.span("netcalc.explain"):
                        self._attach_provenance(result)
                self._result = result
                return result

        with obs.tracer.span("netcalc.validate"):
            check_network(network)
        with obs.tracer.span("netcalc.toposort"):
            order = topological_port_order(network)
        obs.metrics.gauge("netcalc.ports", len(order))

        # bucket of each flow when entering each port of its tree
        entering = self.ingress_buckets()

        cache = self._resolve_cache()
        fingerprints: Dict[PortId, str] = {}
        cache_hits = cache_misses = 0
        if cache is not None:
            with obs.tracer.span("netcalc.fingerprint"):
                fingerprints = self.port_fingerprints()

        result = NetworkCalculusResult(grouping=self.grouping)
        port_delay: Dict[PortId, float] = {}

        collect = obs.enabled
        progress = obs.progress
        propagation_span = obs.tracer.span(
            "netcalc.propagate", n_ports=len(order), grouping=self.grouping
        )
        flows_propagated = 0
        with propagation_span:
            for index, port_id in enumerate(order):
                if progress:
                    progress.update("netcalc.propagate", index, len(order))
                analysis = (
                    cache.get("nc.port", fingerprints[port_id])
                    if cache is not None
                    else None
                )
                if analysis is None:
                    buckets = {
                        name: entering[(name, port_id)]
                        for name in sorted(network.vls_at_port(port_id))
                    }
                    analysis = self.analyze_port(port_id, buckets)
                    if cache is not None:
                        cache.put("nc.port", fingerprints[port_id], analysis)
                        cache_misses += 1
                else:
                    cache_hits += 1
                port_delay[port_id] = analysis.delay_us
                result.ports[port_id] = analysis
                # propagate every flow to its next port(s)
                n_flows = self.propagate_port(entering, port_id, analysis.delay_us)
                if collect:
                    flows_propagated += n_flows
            if progress:
                progress.update("netcalc.propagate", len(order), len(order))

        if collect:
            obs.metrics.counter("netcalc.ports_analyzed", len(order))
            obs.metrics.counter("netcalc.flow_propagations", flows_propagated)
            if cache is not None:
                obs.metrics.counter("netcalc.port_cache_hits", cache_hits)
                obs.metrics.counter("netcalc.port_cache_misses", cache_misses)
            obs.metrics.gauge(
                "netcalc.groups",
                # repro-lint: allow[REPRO101] integer group counts; exact in floats
                sum(analysis.n_groups for analysis in result.ports.values()),
            )

        with obs.tracer.span("netcalc.paths"):
            self.finalize_paths(result, port_delay)
        if result_cache is not None and result_fp is not None:
            result_cache.put(
                "nc.result",
                result_fp,
                NetworkCalculusResult(
                    grouping=result.grouping,
                    ports=dict(result.ports),
                    paths=dict(result.paths),
                ),
            )
        if self.explain:
            with obs.tracer.span("netcalc.explain"):
                self._attach_provenance(result)
        if collect:
            obs.metrics.counter("netcalc.paths_bound", len(result.paths))
            ledger = netcalc_cost_ledger(result)
            if cache is not None:
                ledger.record_cache("port", cache_hits, cache_misses)
            if result_cache is not None:
                ledger.record_cache("result", 0, 1)
            stats = obs.export()
            stats["cost"] = ledger.to_dict()
            result.stats = stats
        _LOG.debug(
            "netcalc done %s",
            kv(ports=len(order), paths=len(result.paths), grouping=self.grouping),
        )

        self._result = result
        return result

    def _attach_provenance(self, result: NetworkCalculusResult) -> None:
        """Recompute and attach the per-path provenance ledgers.

        Lazy import: the explain layer costs nothing unless requested.
        """
        from repro.explain.netcalc import netcalc_provenance

        result.provenance = netcalc_provenance(self, result)


def analyze_network_calculus(
    network: Network,
    grouping: bool = True,
    frame_overhead_bytes: float = 0.0,
    collect_stats: bool = False,
    progress=None,
    incremental: bool = False,
    cache=None,
    explain: bool = False,
) -> NetworkCalculusResult:
    """One-shot convenience wrapper around :class:`NetworkCalculusAnalyzer`."""
    return NetworkCalculusAnalyzer(
        network,
        grouping=grouping,
        frame_overhead_bytes=frame_overhead_bytes,
        collect_stats=collect_stats,
        progress=progress,
        incremental=incremental,
        cache=cache,
        explain=explain,
    ).analyze()
