"""Static-priority (SPQ) Network Calculus analysis.

The DATE 2010 paper analyses the pure-FIFO AFDX; ARINC 664 switches
however support **two static priority levels** per output port, and the
same research group studied exactly this extension (Ridouard, Scharbarg
& Fraboul, *"Stochastic upper bounds for heterogeneous flows using a
Static Priority Queueing on an AFDX network"*).  This module provides
the deterministic SPQ counterpart of
:class:`repro.netcalc.analyzer.NetworkCalculusAnalyzer`:

* **high-priority class** (``VirtualLink.priority == 1``): served at
  link rate after the technological latency *plus* one maximal
  low-priority frame of non-preemptive blocking —
  ``beta_H = R (t - T - C_L_max / 1)+`` with
  ``C_L_max`` the largest low frame crossing the port;
* **low-priority class** (``priority == 0``): receives the *leftover*
  service ``beta_L(t) = [beta(t) - alpha_H(t)]+`` where ``alpha_H`` is
  the high class's (grouped) aggregate arrival curve — a convex
  piecewise-linear curve handled directly by the horizontal-deviation
  machinery;
* FIFO aggregation within each class, grouping by input link within
  each class, and downstream burst inflation by the class delay, as in
  the FIFO analyzer.

With every VL left at the default priority 0 the analysis degenerates
to the FIFO one (no high traffic, no blocking), which the test suite
checks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.curves import (
    LeakyBucket,
    PiecewiseCurve,
    RateLatency,
    add_curves,
    horizontal_deviation,
    sum_curves,
    vertical_deviation,
)
from repro.errors import UnstableNetworkError
from repro.netcalc.grouping import arrival_groups, group_arrival_curve
from repro.netcalc.results import NetworkCalculusResult, PathBound, PortAnalysis
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network

__all__ = ["StaticPriorityAnalyzer", "analyze_static_priority", "leftover_service"]

_EPS = 1e-9


def leftover_service(beta: PiecewiseCurve, alpha_high: PiecewiseCurve) -> PiecewiseCurve:
    """The low-priority leftover service curve ``[beta - alpha_high]+``.

    ``beta`` convex and ``alpha_high`` concave make the difference
    convex; clamping at zero keeps it a valid (wide-sense increasing
    after its dead time) service curve.  Returns a piecewise-linear
    curve whose final slope is ``beta.final_slope -
    alpha_high.final_slope`` (must be positive for stability).
    """
    tail = beta.final_slope - alpha_high.final_slope
    if tail <= _EPS:
        raise UnstableNetworkError(
            "high-priority traffic saturates the link: no leftover service "
            f"(rates {alpha_high.final_slope:.3f} vs {beta.final_slope:.3f})"
        )
    knots = sorted(
        {x for x, _ in beta.breakpoints}
        | {x for x, _ in alpha_high.breakpoints}
    )
    # add the zero-crossing of (beta - alpha_high) so the clamp is exact
    crossing = None
    horizon = knots[-1] + 1.0
    probe = knots + [horizon]
    for x0, x1 in zip(probe, probe[1:]):
        d0 = beta(x0) - alpha_high(x0)
        d1 = beta(x1) - alpha_high(x1)
        if d0 < -_EPS and d1 > _EPS:
            crossing = x0 + (x1 - x0) * (-d0) / (d1 - d0)
            break
    last = knots[-1]
    if beta(last) - alpha_high(last) < -_EPS and crossing is None:
        # still negative at the last knot: crosses on the final segments
        d_last = beta(last) - alpha_high(last)
        crossing = last + (-d_last) / tail
    if crossing is not None:
        knots = sorted(set(knots) | {crossing})
    points = [(x, max(0.0, beta(x) - alpha_high(x))) for x in knots]
    return PiecewiseCurve(points, tail)


class StaticPriorityAnalyzer:
    """Per-path delay bounds under two-level static priority queueing.

    Parameters
    ----------
    network:
        The configuration; ``VirtualLink.priority`` selects each VL's
        class (1 = high, 0 = low).
    grouping:
        Apply the input-link grouping technique within each class.
    """

    HIGH = 1
    LOW = 0

    def __init__(self, network: Network, grouping: bool = True):
        self.network = network
        self.grouping = grouping
        self._result: "NetworkCalculusResult | None" = None

    def analyze(self) -> NetworkCalculusResult:
        """Run the SPQ propagation and return (and cache) the result."""
        if self._result is not None:
            return self._result
        network = self.network
        check_network(network)
        order = topological_port_order(network)

        entering: Dict[Tuple[str, PortId], LeakyBucket] = {}
        for name, vl in network.virtual_links.items():
            first_port = (vl.source, vl.paths[0][1])
            entering[(name, first_port)] = LeakyBucket(
                rate=vl.rate_bits_per_us, burst=vl.s_max_bits
            )

        result = NetworkCalculusResult(grouping=self.grouping)
        # per (port, class) delay; per-flow lookups use the flow's class
        class_delay: Dict[Tuple[PortId, int], float] = {}

        for port_id in order:
            flows = network.vls_at_port(port_id)
            buckets = {name: entering[(name, port_id)] for name in sorted(flows)}
            port = network.output_port(*port_id)
            beta = RateLatency(
                rate=port.rate_bits_per_us, latency=port.latency_us
            ).curve()

            alpha_by_class, n_groups = self._class_aggregates(port_id, buckets)
            delays = self._class_delays(port_id, alpha_by_class, beta, flows)
            for level, delay in delays.items():
                class_delay[(port_id, level)] = delay

            # the shared buffer holds both classes: backlog of the sum
            aggregate = add_curves(alpha_by_class[self.HIGH], alpha_by_class[self.LOW])
            backlog = vertical_deviation(aggregate, beta)
            result.ports[port_id] = PortAnalysis(
                port_id=port_id,
                delay_us=max(delays.values()),
                backlog_bits=backlog,
                utilization=network.port_utilization(port_id),
                n_flows=len(flows),
                n_groups=n_groups,
            )

            for name in sorted(flows):
                level = network.vl(name).priority
                out_bucket = buckets[name].delayed(delays[level])
                for path in network.vl(name).paths:
                    ports = list(zip(path, path[1:]))
                    for pos, pid in enumerate(ports):
                        if pid == port_id and pos + 1 < len(ports):
                            entering[(name, ports[pos + 1])] = out_bucket

        for vl_name, path_index, node_path in network.flow_paths():
            level = network.vl(vl_name).priority
            port_ids = tuple((a, b) for a, b in zip(node_path, node_path[1:]))
            per_port = tuple(class_delay[(pid, level)] for pid in port_ids)
            result.paths[(vl_name, path_index)] = PathBound(
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                port_ids=port_ids,
                per_port_delay_us=per_port,
                total_us=math.fsum(per_port),
            )
        self._result = result
        return result

    # ------------------------------------------------------------------

    def _class_aggregates(
        self, port_id: PortId, buckets: Dict[str, LeakyBucket]
    ) -> Tuple[Dict[int, PiecewiseCurve], int]:
        """Grouped aggregate arrival curve per priority class."""
        network = self.network
        groups = arrival_groups(network, port_id)
        per_class: Dict[int, List[PiecewiseCurve]] = {self.HIGH: [], self.LOW: []}
        n_groups = 0
        for key, members in sorted(groups.items()):
            for level in (self.HIGH, self.LOW):
                subset = frozenset(
                    m for m in members if network.vl(m).priority == level
                )
                if not subset:
                    continue
                n_groups += 1
                per_class[level].append(
                    group_arrival_curve(network, key, subset, buckets, self.grouping)
                )
        return (
            {level: sum_curves(curves) for level, curves in per_class.items()},
            n_groups,
        )

    def _class_delays(
        self,
        port_id: PortId,
        alpha_by_class: Dict[int, PiecewiseCurve],
        beta: PiecewiseCurve,
        flows,
    ) -> Dict[int, float]:
        """FIFO-within-class delay bound for each priority level."""
        network = self.network
        rate = network.link_rate(*port_id)

        # high class: full service minus one low frame of blocking
        low_frames = [
            network.vl(name).s_max_bits
            for name in flows
            if network.vl(name).priority == self.LOW
        ]
        blocking_us = (max(low_frames) / rate) if low_frames else 0.0
        latency = network.node(port_id[0]).technological_latency_us
        beta_high = RateLatency(rate=rate, latency=latency + blocking_us).curve()
        delays: Dict[int, float] = {}

        alpha_high = alpha_by_class[self.HIGH]
        delays[self.HIGH] = horizontal_deviation(alpha_high, beta_high)

        # low class: leftover service after the high aggregate
        if alpha_high.burst <= _EPS and alpha_high.final_slope <= _EPS:
            beta_low = beta
        else:
            beta_low = leftover_service(beta, alpha_high)
        delays[self.LOW] = horizontal_deviation(alpha_by_class[self.LOW], beta_low)

        for level, delay in delays.items():
            if math.isinf(delay):
                raise UnstableNetworkError(
                    f"no finite delay bound for priority class {level} at port "
                    f"{port_id[0]}->{port_id[1]}"
                )
        return delays


def analyze_static_priority(
    network: Network, grouping: bool = True
) -> NetworkCalculusResult:
    """One-shot convenience wrapper around :class:`StaticPriorityAnalyzer`."""
    return StaticPriorityAnalyzer(network, grouping=grouping).analyze()
