"""The grouping (serialization) technique of the Network Calculus tool.

Paper, Sec. II-B: *"the worst-case incoming traffic in a switch output
port is divided and grouped by flows coming from the same source (i.e.
transmission link).  Each group is shaped by a leaky bucket with a burst
equal to the largest frame size and a rate equal to the rate of the
source."*

Frames of flows that share an upstream link are physically serialized
on that link, so the aggregate they present to the next port can never
exceed the link's own shaping curve — the leaky bucket
``(max frame of the group, link rate)``.  Taking the pointwise minimum
of the group members' summed curves and the link shaping curve tightens
the aggregate (historically ~40 % on industrial configurations, per the
paper's 10 % figure being *on top of* an already-grouped NC baseline).

**Multicast fan-out (audit note).**  A multicast VL crosses several
output ports of the same switch.  Grouping stays sound there because it
partitions *per output port* and keys each group by the VL's upstream
port at that node — which is unique per node of the VL's tree — so
every member listed in a group genuinely crossed the group's shared
link, on every branch independently, and no flow is double-counted
within a port.  Audited alongside the trajectory re-meeting fix; see
``tests/netcalc/test_grouping.py::
test_multicast_fan_out_counted_once_per_output_port``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.curves import LeakyBucket, PiecewiseCurve, min_curves, sum_curves
from repro.network.port import PortId
from repro.network.topology import Network

__all__ = ["GroupKey", "arrival_groups", "group_arrival_curve", "port_aggregate_curve"]

#: Flows are grouped by the upstream port they arrive through;
#: locally-sourced flows (at their ES output port) are ungrouped and use
#: a per-flow key ``("source", vl_name)``.
GroupKey = Tuple[str, str]


def arrival_groups(network: Network, port_id: PortId) -> Dict[GroupKey, FrozenSet[str]]:
    """Partition the VLs crossing ``port_id`` by arrival link.

    Returns a mapping from group key to the VL names of the group.
    Flows whose source end system owns the port get singleton groups
    (nothing upstream constrains them jointly).
    """
    groups: Dict[GroupKey, set] = {}
    for vl_name in sorted(network.vls_at_port(port_id)):
        upstream = network.upstream_port(vl_name, port_id)
        key: GroupKey = upstream if upstream is not None else ("source", vl_name)
        groups.setdefault(key, set()).add(vl_name)
    return {key: frozenset(members) for key, members in groups.items()}


def group_arrival_curve(
    network: Network,
    key: GroupKey,
    members: Iterable[str],
    buckets: Mapping[str, LeakyBucket],
    grouping: bool,
) -> PiecewiseCurve:
    """Arrival curve of one input-link group at a port.

    Parameters
    ----------
    key:
        The group key from :func:`arrival_groups` — an upstream port id,
        or ``("source", vl)`` for a locally-sourced flow.
    members:
        VL names in the group.
    buckets:
        Current leaky bucket of each member *at this port*.
    grouping:
        When False, or when the group is locally sourced, the curve is
        the plain sum of the members; otherwise it is capped by the
        upstream link's shaping curve.
    """
    member_list = sorted(members)
    summed = sum_curves(buckets[name].curve() for name in member_list)
    if not grouping or key[0] == "source":
        return summed
    link_rate = network.link_rate(*key)
    biggest_frame = max(network.vl(name).s_max_bits for name in member_list)
    shaping = PiecewiseCurve.affine(link_rate, biggest_frame)
    return min_curves(summed, shaping)


def port_aggregate_curve(
    network: Network,
    port_id: PortId,
    buckets: Mapping[str, LeakyBucket],
    grouping: bool,
) -> Tuple[PiecewiseCurve, int]:
    """Aggregate arrival curve at a port and the number of groups used."""
    groups = arrival_groups(network, port_id)
    curves: List[PiecewiseCurve] = [
        group_arrival_curve(network, key, members, buckets, grouping)
        for key, members in sorted(groups.items())
    ]
    return sum_curves(curves), len(groups)
