"""Earliest/latest arrival times (``Smin`` / ``Smax``) along VL trees.

The Trajectory approach offsets the workload of a competing flow ``j``
at the first port it shares with the flow under study ``i`` by

    ``A_ij = Smax(j, f) - Smin(i, f)``

where ``Smin(x, p)`` / ``Smax(x, p)`` bound the time between the release
of a frame of ``x`` at its source and its arrival in the queue of port
``p`` on its path.  ``Smin`` is exact (minimum-size frames, bare
latencies, empty queues).  ``Smax`` must be a *sound upper bound*; we
seed it from the Network Calculus per-port delay bounds — themselves
sound — and let the analyzer tighten it with trajectory prefix bounds
(see :class:`repro.trajectory.analyzer.TrajectoryAnalyzer`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.netcalc.results import NetworkCalculusResult
from repro.network.port import PortId
from repro.network.topology import Network

__all__ = ["FlowPortKey", "tree_prefixes", "compute_smin", "seed_smax_from_netcalc"]

FlowPortKey = Tuple[str, PortId]


def tree_prefixes(network: Network) -> Dict[FlowPortKey, Tuple[PortId, ...]]:
    """For every (VL, port) of every VL tree: the unique port prefix.

    The prefix of port ``p`` on VL ``v`` is the sequence of ports a
    frame of ``v`` traverses from the source up to *and including*
    ``p``.  Because multicast paths form a tree, the prefix is unique
    even when several paths share ``p``.
    """
    prefixes: Dict[FlowPortKey, Tuple[PortId, ...]] = {}
    for vl_name, _idx, path in network.flow_paths():
        ports = [(a, b) for a, b in zip(path, path[1:])]
        for pos, pid in enumerate(ports):
            prefixes[(vl_name, pid)] = tuple(ports[: pos + 1])
    return prefixes


def compute_smin(network: Network) -> Dict[FlowPortKey, float]:
    """Earliest arrival of each VL's frames in each of its port queues.

    Measured from the frame's release into its source ES output queue:
    the frame crosses every earlier port in its bare minimum
    transmission time and incurs each downstream node's technological
    latency, meeting no contention at all.  ``Smin(v, first port) = 0``.
    """
    smin: Dict[FlowPortKey, float] = {}
    for (vl_name, pid), prefix in tree_prefixes(network).items():
        vl = network.vl(vl_name)
        terms = [
            vl.s_min_bits / network.link_rate(*earlier) for earlier in prefix[:-1]
        ]
        terms.extend(
            network.node(later[0]).technological_latency_us for later in prefix[1:]
        )
        smin[(vl_name, pid)] = math.fsum(terms)
    return smin


def seed_smax_from_netcalc(
    network: Network, nc_result: NetworkCalculusResult
) -> Dict[FlowPortKey, float]:
    """Sound initial ``Smax`` from Network Calculus per-port bounds.

    The NC delay bound of port ``q`` covers a frame from its arrival at
    the node owning ``q`` to the end of its transmission, so::

        Smax(v, p_m) <= sum of NC delays of p_1 .. p_{m-1}
                        + technological latency of p_m's owner

    with ``Smax(v, first port) = 0`` (release *is* the arrival in the
    first queue).
    """
    smax: Dict[FlowPortKey, float] = {}
    for (vl_name, pid), prefix in tree_prefixes(network).items():
        terms = [nc_result.ports[earlier].delay_us for earlier in prefix[:-1]]
        if len(prefix) > 1:
            terms.append(network.node(pid[0]).technological_latency_us)
        smax[(vl_name, pid)] = math.fsum(terms)
    return smax
