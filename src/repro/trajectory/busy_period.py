"""Busy-period bounds and candidate release instants.

A *busy period* of an output port is a maximal interval during which
the port always has a frame to transmit (paper Sec. II-B).  The packet
under study is released inside a busy period of its **first** port (a
release outside one would see an empty source queue and a strictly
easier scenario), so the maximization variable ``t`` of the Trajectory
formula ranges over ``[0, BP)`` where ``BP`` bounds the longest busy
period of the source port.

The workload function ``W(t) - t`` is piecewise decreasing between the
jump instants of the interference counters, so only ``t = 0`` and the
jump instants inside ``[0, BP)`` need to be evaluated.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConvergenceError, UnstableNetworkError

__all__ = ["interference_count", "busy_period_bound", "candidate_instants"]

#: Hard cap on fixed-point iterations (a stable port converges far sooner).
_MAX_ITERATIONS = 10_000


def interference_count(t: float, offset: float, period: float) -> int:
    """Frames of a sporadic ``(C, T)`` flow able to delay a release at ``t``.

    ``(1 + floor((t + A) / T))+`` — the Martin & Minet counter: the
    flow's frames that may reach the shared port no later than the
    packet under study, given the relative arrival offset ``A``.
    """
    shifted = t + offset
    if shifted < 0:
        return 0
    return 1 + math.floor(shifted / period + 1e-9)


def busy_period_bound(
    flows: Iterable[Tuple[float, float, float]],
    max_iterations: int = _MAX_ITERATIONS,
) -> float:
    """Longest busy period of a port serving sporadic flows.

    Parameters
    ----------
    flows:
        Triples ``(C, T, A)`` — transmission time, period (BAG) and
        arrival offset of every flow crossing the port.

    Returns the least fixed point of
    ``b = sum_j count_j(b) * C_j`` reached by ascending iteration.

    Raises
    ------
    UnstableNetworkError
        If the port utilization is >= 1 (no finite busy period).
    ConvergenceError
        If the iteration budget is exhausted (defensive; cannot happen
        for utilization < 1).
    """
    flow_list = list(flows)
    if not flow_list:
        return 0.0
    utilization = math.fsum(c / t for c, t, _ in flow_list)
    if utilization >= 1.0 - 1e-12:
        raise UnstableNetworkError(
            f"port utilization {utilization:.4f} >= 1: busy period is unbounded"
        )
    value = math.fsum(c for c, _, _ in flow_list)
    for _ in range(max_iterations):
        new_value = math.fsum(
            interference_count(value, offset, period) * c
            for c, period, offset in flow_list
        )
        if new_value <= value + 1e-9:
            return max(value, new_value)
        value = new_value
    raise ConvergenceError(
        f"busy-period iteration did not converge within {max_iterations} steps"
    )


def candidate_instants(
    competitors: Dict[str, Tuple[float, float, float]],
    horizon: float,
) -> List[float]:
    """Release instants where the trajectory workload can peak.

    Returns ``0`` plus every jump instant ``k * T_j - A_j`` of every
    competitor counter that falls inside ``(0, horizon)``, sorted and
    deduplicated.
    """
    instants = {0.0}
    for _c, period, offset in competitors.values():
        k = math.floor(offset / period) + 1
        while True:
            t = k * period - offset
            if t >= horizon:
                break
            if t > 0:
                instants.add(t)
            k += 1
    return sorted(instants)
