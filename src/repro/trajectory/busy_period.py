"""Busy-period bounds and candidate release instants.

A *busy period* of an output port is a maximal interval during which
the port always has a frame to transmit (paper Sec. II-B).  The packet
under study is released inside a busy period of its **first** port (a
release outside one would see an empty source queue and a strictly
easier scenario), so the maximization variable ``t`` of the Trajectory
formula ranges over ``[0, BP)`` where ``BP`` bounds the longest busy
period of the source port.

The workload function ``W(t) - t`` is piecewise decreasing between the
jump instants of the interference counters, so only ``t = 0`` and the
jump instants inside ``[0, BP)`` need to be evaluated.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConvergenceError, UnstableNetworkError

__all__ = ["interference_count", "busy_period_bound", "candidate_instants"]

#: Hard cap on fixed-point iterations (a stable port converges far sooner).
_MAX_ITERATIONS = 10_000


def _multiple_le(k: int, period: float, shifted: float) -> bool:
    """Exact test ``k * period <= shifted`` over the floats' real values.

    ``float.as_integer_ratio`` is exact (every binary float is a dyadic
    rational), so the comparison is performed in integer arithmetic with
    no rounding at all.
    """
    pn, pd = period.as_integer_ratio()
    sn, sd = shifted.as_integer_ratio()
    return k * pn * sd <= sn * pd


def interference_count(t: float, offset: float, period: float) -> int:
    """Frames of a sporadic ``(C, T)`` flow able to delay a release at ``t``.

    ``(1 + floor((t + A) / T))+`` — the Martin & Minet counter: the
    flow's frames that may reach the shared port no later than the
    packet under study, given the relative arrival offset ``A``.  The
    boundary is inclusive: at ``t + A`` exactly ``k * T`` the ``k``-th
    periodic frame still counts.

    The floor is evaluated *exactly* on the real values of the floats
    (``shifted = fl(t + A)`` is the defined input): the rounded quotient
    seeds the answer and is then corrected against the exact integer
    comparison ``k * T <= shifted``.  A historical ``+ 1e-9`` epsilon
    fudge both over-counted a frame whenever ``t + A`` landed just
    below a multiple of ``T`` (a tightness loss) and under-protected
    once the quotient grew past ``~1e9`` ulps (where the division error
    exceeds 1e-9).
    """
    shifted = t + offset
    if shifted < 0:
        return 0
    quotient = shifted / period
    k = math.floor(quotient)
    # Fast path: division is correctly rounded (error <= 0.5 ulp), so a
    # fractional part safely away from both 0 and 1 proves the floor is
    # already exact.  `quotient - k` is itself exact (Sterbenz).
    fraction = quotient - k
    tolerance = (quotient + 1.0) * 2.0 ** -50
    if tolerance < fraction < 1.0 - tolerance:
        return 1 + k
    # Near a boundary: settle k = max{j : j * T <= shifted} exactly.
    while k > 0 and not _multiple_le(k, period, shifted):
        k -= 1
    while _multiple_le(k + 1, period, shifted):
        k += 1
    return 1 + k


def busy_period_bound(
    flows: Iterable[Tuple[float, float, float]],
    max_iterations: int = _MAX_ITERATIONS,
) -> float:
    """Longest busy period of a port serving sporadic flows.

    Parameters
    ----------
    flows:
        Triples ``(C, T, A)`` — transmission time, period (BAG) and
        arrival offset of every flow crossing the port.

    Returns the least fixed point of
    ``b = sum_j count_j(b) * C_j`` reached by ascending iteration.

    Raises
    ------
    UnstableNetworkError
        If the port utilization is >= 1 (no finite busy period).
    ConvergenceError
        If the iteration budget is exhausted (defensive; cannot happen
        for utilization < 1).
    """
    flow_list = list(flows)
    if not flow_list:
        return 0.0
    utilization = math.fsum(c / t for c, t, _ in flow_list)
    if utilization >= 1.0 - 1e-12:
        raise UnstableNetworkError(
            f"port utilization {utilization:.4f} >= 1: busy period is unbounded"
        )
    value = math.fsum(c for c, _, _ in flow_list)
    for _ in range(max_iterations):
        new_value = math.fsum(
            interference_count(value, offset, period) * c
            for c, period, offset in flow_list
        )
        if new_value <= value + 1e-9:
            return max(value, new_value)
        value = new_value
    raise ConvergenceError(
        f"busy-period iteration did not converge within {max_iterations} steps"
    )


def candidate_instants(
    competitors: Dict[str, Tuple[float, float, float]],
    horizon: float,
) -> List[float]:
    """Release instants where the trajectory workload can peak.

    Returns ``0`` plus every jump instant ``k * T_j - A_j`` of every
    competitor counter that falls inside ``(0, horizon)``, sorted and
    deduplicated.

    Every emitted instant is *canonical*: the smallest float ``t`` at
    which :func:`interference_count` has actually jumped to ``1 + k``.
    The raw ``fl(k * T - A)`` rounding can land one ulp to either side
    of that float — early, and the counter has not jumped yet at the
    emitted candidate; late, and two flows whose jump instants coincide
    in exact arithmetic emit floats one ulp apart, evaluating the same
    candidate twice with values that disagree under re-association.
    Nudging to the canonical float fixes both, and makes the exact
    set-based deduplication sufficient.
    """
    instants = {0.0}
    for _c, period, offset in competitors.values():
        k = math.floor(offset / period) + 1
        while True:
            t = k * period - offset
            if t >= horizon:
                break
            if t > 0.0:
                t = _canonical_jump(k, period, offset)
                if 0.0 < t < horizon:
                    instants.add(t)
            k += 1
    return sorted(instants)


def _canonical_jump(k: int, period: float, offset: float) -> float:
    """Smallest float ``t`` at which the counter has reached ``1 + k``.

    The raw ``fl(k * period - offset)`` estimate brackets the true jump
    within a few rounding errors; a float bisection then pins the first
    ``t`` whose (rounded) ``t + offset`` crosses the exact boundary.
    Bisection — not ulp-stepping — because under heavy cancellation
    (``t`` many orders of magnitude below ``offset``) millions of
    consecutive ``t`` floats can share one ``fl(t + offset)`` value.

    Returns ``0.0`` when the jump happens at or before zero (the caller
    only keeps instants strictly inside ``(0, horizon)``).
    """
    target = 1 + k
    t = k * period - offset
    if interference_count(t, offset, period) >= target:
        step = max(math.ulp(t), math.ulp(offset))
        lo = t - step
        while lo > 0.0 and interference_count(lo, offset, period) >= target:
            step *= 2.0
            lo = t - step
        if lo <= 0.0:
            if interference_count(0.0, offset, period) >= target:
                return 0.0
            lo = 0.0
        hi = t
    else:
        step = max(math.ulp(t), math.ulp(t + offset))
        hi = t + step
        while interference_count(hi, offset, period) < target:
            step *= 2.0
            hi = t + step
        lo = t
    # invariant: count(lo) < target <= count(hi); shrink to adjacency
    while True:
        mid = lo + (hi - lo) / 2.0
        if mid <= lo or mid >= hi:
            return hi
        if interference_count(mid, offset, period) >= target:
            hi = mid
        else:
            lo = mid
