"""Result containers for the Trajectory analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.port import PortId

__all__ = ["TrajectoryPathBound", "TrajectoryResult"]

FlowPathKey = Tuple[str, int]


@dataclass(frozen=True)
class TrajectoryPathBound:
    """End-to-end Trajectory bound for one VL path, with diagnostics.

    Attributes
    ----------
    total_us:
        The worst-case end-to-end delay bound.
    critical_instant_us:
        The release offset ``t`` (within the source-port busy period)
        that realised the maximum — 0 in most simple configurations.
    busy_period_us:
        Length bound of the source-port busy period (the range the
        candidate release times were drawn from).
    workload_us / transition_us / latency_us / serialization_gain_us:
        Decomposition of the bound: competing-frame workload, the
        per-transition "counted twice" terms, technological latencies,
        and the amount removed by input-link serialization.
    n_competitors / n_candidates:
        Number of competing VLs considered and of candidate release
        times evaluated.
    """

    vl_name: str
    path_index: int
    node_path: Tuple[str, ...]
    port_ids: Tuple[PortId, ...]
    total_us: float
    critical_instant_us: float
    busy_period_us: float
    workload_us: float
    transition_us: float
    latency_us: float
    serialization_gain_us: float
    n_competitors: int
    n_candidates: int


@dataclass
class TrajectoryResult:
    """Full outcome of a Trajectory run.

    Attributes
    ----------
    serialization:
        Serialization mode used: ``"paper"`` (the historical credit of
        the DATE 2010 tool) or ``"safe"`` (plain sound analysis).
    refinement_iterations:
        Number of ``Smax`` fixed-point sweeps actually performed.
    paths:
        Per-VL-path bounds, keyed by ``(vl_name, path_index)``.
    stats:
        Observability snapshot (counters / timers / phase spans plus
        the ``sweeps`` convergence trace, see :mod:`repro.obs`) when
        the analysis ran with ``collect_stats=True``; None otherwise.
    provenance:
        Per-path bound :class:`~repro.obs.provenance.Decomposition`
        ledgers, keyed like ``paths``, when the analysis ran with
        ``explain=True``; None otherwise.  Never cached: always
        recomputed from a live fixed-point run.
    """

    serialization: str
    refinement_iterations: int = 0
    paths: Dict[FlowPathKey, TrajectoryPathBound] = field(default_factory=dict)
    stats: Optional[Dict[str, object]] = None
    provenance: Optional[Dict[FlowPathKey, object]] = None

    def bound_us(self, vl_name: str, path_index: int = 0) -> float:
        """End-to-end bound of one VL path, in microseconds."""
        return self.paths[(vl_name, path_index)].total_us

    def path_bounds(self) -> List[TrajectoryPathBound]:
        """All path bounds, in deterministic (vl, index) order."""
        return [self.paths[key] for key in sorted(self.paths)]

    def worst_path(self) -> TrajectoryPathBound:
        """The path with the largest end-to-end bound."""
        if not self.paths:
            raise ValueError("result contains no paths")
        return max(self.paths.values(), key=lambda p: p.total_us)
