"""The Trajectory-approach analyzer.

For every Virtual-Link path the analyzer maximizes, over the candidate
release instants ``t`` of the source-port busy period, the latest
completion time of the studied packet at its last port:

    ``R_i(t) = sum_j N_j(t) C_j  +  sum_k Delta_k  +  sum_k L_k
               - serialization_gain - t``

where ``N_j`` counts the frames of every flow sharing at least one port
with the path (each flow counted once, at its first meeting port,
offset by ``A_ij = Smax_j - Smin_i``), ``Delta_k`` is the
"frame counted twice" bound at each port transition (the largest frame
crossing the port — the paper's Sec. III-B-1 pessimism source), and
``L_k`` the technological latencies.

``Smax`` is refined by a sound descending fixed point: it is seeded
from the Network Calculus per-port bounds (valid upper bounds) and
tightened with trajectory prefix bounds until stable, so the analysis
is sound after *any* number of sweeps.

In ``"safe"`` mode the competitor counter additionally applies the
**catch-up correction**: the historical Martin & Minet alignment
``A_ij = Smax_j(f) - Smin_i(f)`` misses frames of a competitor released
*after* the studied packet that still reach the first shared queue
before it — feasible whenever the studied flow's longest transit to the
meeting port exceeds the competitor's shortest one (long prefixes
meeting short feeders, the ``random_network(589)`` soundness violation).
Safe mode therefore uses ``A_ij = max(Smax_j(f) - Smin_i(f),
Smax_i(f) - Smin_j(f))``, which covers both the delayed-competitor and
the delayed-studied-packet alignments.  The reproduction modes
(``"paper"`` / ``"windowed"``) keep the historical counter.

Implementation note: each sweep walks every VL's multicast tree once,
maintaining the competitor set, the base workload and the candidate
jump events incrementally (with rollback on backtrack), so the cost per
tree port is proportional to the *new* competitors met there rather
than to the whole competitor set — this is what keeps the ~1000-VL
industrial configuration tractable in seconds.

Two interchangeable kernels execute that walk (``kernel=`` parameter):

``"fast"`` (the default)
    Flat per-port competitor tables (parallel ``(C, T, Smin, Smax)``
    arrays over each port's sorted members) replace the per-candidate
    dict walks and attribute-property chains; the meeting structure is
    resolved once per ``(VL, port)`` into member *indices*; finished
    walks are memoized across sweeps keyed by the packed ``Smax``
    slices they read (``repro.incremental``'s content-addressed
    packing), so a converged region is never re-walked; and the
    candidate scan prunes provably dominated instants
    (:meth:`TrajectoryAnalyzer._maximize_fast`).

``"reference"``
    The original dict-based walk, kept verbatim as the control.

Both kernels replay the exact same floating-point operation sequence
for every bound they emit, so their results are **bit-identical** —
``scripts/kernel_gate.py`` enforces this on every ``make check``; only
``n_candidates`` may differ (the fast kernel evaluates fewer, see
``docs/PERFORMANCE.md`` for the dominance proof).
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.obs.costmodel import CostLedger, record_trajectory_sweep
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.trajectory.busy_period import busy_period_bound, interference_count
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult
from repro.trajectory.serialization import normalize_mode
from repro.trajectory.timing import (
    FlowPortKey,
    compute_smin,
    seed_smax_from_netcalc,
    tree_prefixes,
)

__all__ = ["TrajectoryAnalyzer", "analyze_trajectory"]

_LOG = get_logger("trajectory")

_EPS = 1e-6

#: fast kernel: smallest per-port competitor batch worth the numpy
#: dispatch overhead; smaller batches run the scalar fold loop (both
#: paths compute the same floats, so the threshold is purely a tuning
#: knob, not a semantics switch)
_VEC_MIN = 16

#: sweep-varying floats of one ``"traj.node"`` cache address, packed
#: losslessly: (horizon, Smin_self, Smax_self) — same encoding as
#: ``repro.incremental.fingerprint.pack_floats`` but pre-compiled for
#: the fold hot path
_pack_fold_floats = struct.Struct("<3d").pack

#: boundary tolerance of the `interference_count` fast path (one part
#: in 2^50 of the quotient — 8x the worst-case division error)
_BOUNDARY_TOL = 2.0 ** -50


def _batch_fold(
    c: "np.ndarray", period: "np.ndarray", offset: "np.ndarray", horizon: float
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vector twin of the scalar per-competitor fold (fast kernel).

    ``bases[i]`` is bit-identical to
    ``interference_count(0.0, offset[i], period[i]) * c[i]``: every
    operation is the same IEEE-754 double operation the scalar code
    performs, executed elementwise (numpy ufuncs round each element
    independently — there is no re-association to drift on).  Elements
    near a period boundary fall back to the exact scalar counter, just
    like the scalar fast path does.

    ``maybe`` lists the positions whose first counter jump
    ``fl((offset // period + 1) * period - offset)`` — the exact float
    the scalar event loop tests first — lands inside the busy period.
    Only those flows can contribute candidate events; callers fold them
    through the exact `_flow_events` path.  On avionics-shaped
    configurations (BAG orders of magnitude above the busy period) the
    list is almost always empty, which is what makes the batch fold
    worth it: the common case is pure elementwise arithmetic.
    """
    quotient = offset / period
    k = np.floor(quotient)
    fraction = quotient - k
    tolerance = (quotient + 1.0) * _BOUNDARY_TOL
    counts = k + 1.0
    exact = (tolerance < fraction) & (fraction < 1.0 - tolerance)
    negative = offset < 0.0
    counts[negative] = 0.0
    for i in (~(exact | negative)).nonzero()[0].tolist():
        counts[i] = interference_count(0.0, float(offset[i]), float(period[i]))
    bases = counts * c
    first_jump = (np.floor_divide(offset, period) + 1.0) * period - offset
    maybe = (first_jump < horizon).nonzero()[0]
    return bases, maybe


def _replay_add(value: float, terms) -> float:
    """``(((value + t0) + t1) + ...)`` — the exact sequential chain.

    This *is* the reference kernel's accumulation: a ``+=`` chain over
    the per-flow bases in add order.  The batch fold hands the bases
    over as a tuple of Python floats so replaying a cached fold costs a
    plain scalar loop (cheaper than any numpy round-trip at the 16-64
    element sizes involved).  Pass the negated terms for the rollback
    chain: IEEE-754 guarantees ``a - b == a + (-b)`` exactly.
    """
    for term in terms:
        value += term
    return value


def _flow_events(
    c: float, period: float, offset: float, horizon: float
) -> Tuple[float, Tuple[Tuple[float, float], ...]]:
    """One flow's base workload and candidate jump events ``(t, C)``.

    Pure in its four floats, which is what makes the per-sweep
    event memo in :meth:`TrajectoryAnalyzer._walk_tree` exact: the same
    ``(C, T, A, horizon)`` always reproduces the same event tuple.
    """
    base = interference_count(0.0, offset, period) * c
    flow_events = []
    k = int((offset // period) + 1)
    while True:
        t = k * period - offset
        if t >= horizon:
            break
        if t > _EPS:
            flow_events.append((t, c))
        k += 1
    return base, tuple(flow_events)


class TrajectoryAnalyzer:
    """Computes Trajectory end-to-end delay bounds for every VL path.

    Parameters
    ----------
    network:
        The configuration to analyze (not mutated).
    serialization:
        Input-link serialization credit (the "enhanced trajectory
        approach" of the paper's Fig. 4).  ``True`` / ``"windowed"``
        applies one credit per port (the reconstruction matching the
        published evaluation); ``"paper"`` applies the literal
        per-group credit (known to be optimistic in corner cases — see
        :mod:`repro.trajectory.serialization`); ``False`` / ``"safe"``
        runs the provably sound plain analysis.
    refine_smax:
        Tighten the ``Smax`` arrival-jitter terms with trajectory
        prefix bounds (default True).  When False the Network Calculus
        seed is used as-is (single sweep) — the ablation of
        ``benchmarks/bench_ablation_fixpoint.py``.
    max_refinements:
        Upper bound on fixed-point sweeps.
    collect_stats:
        Record per-phase spans, counters and the sweep-convergence
        trace (:mod:`repro.obs`) and attach them to the result's
        ``stats`` field.  Off by default: the uninstrumented run is
        bit-identical to the pre-observability analyzer.
    progress:
        Optional ``callable(phase, done, total)`` invoked as each
        sweep walks the VL population.
    incremental:
        Serve per-VL tree walks from a content-addressed
        :class:`~repro.incremental.cache.BoundCache`.  The fixed point
        is *replayed* — the same sweep/tighten sequence as a cold run,
        so every intermediate ``Smax`` map stays a sound upper bound
        and the final bounds are bit-identical — but each walk whose
        inputs (tree structure, competitor contracts and the exact
        ``Smax`` slice it reads) are unchanged is a cache hit.  On an
        edited configuration only the VLs crossing the dirty closure
        ever miss; see :mod:`repro.incremental.delta`.
    cache:
        The cache to use when ``incremental``; defaults to the
        process-wide cache.  Passing a cache implies
        ``incremental=True``.
    explain:
        Attach per-path bound provenance ledgers
        (:func:`repro.explain.trajectory.trajectory_provenance`) to the
        result.  The bounds themselves are bit-identical either way;
        the only recording cost is one ``Smax`` snapshot per sweep.
        Under ``incremental`` the whole-result cache shortcut is
        skipped — provenance needs the final sweep's live state, so it
        is always recomputed, never served stale (per-walk and per-port
        caches still apply).
    kernel:
        ``"fast"`` (default) or ``"reference"`` — which tree-walk
        implementation executes the sweeps (see the module docstring).
        Bounds are bit-identical between the two; the fast kernel may
        evaluate fewer candidates (``n_candidates``) thanks to the
        proven dominance pruning.
    """

    def __init__(
        self,
        network: Network,
        serialization=True,
        refine_smax: bool = True,
        max_refinements: int = 8,
        collect_stats: bool = False,
        progress=None,
        incremental: bool = False,
        cache=None,
        explain: bool = False,
        kernel: Optional[str] = None,
    ):
        if max_refinements < 1:
            raise ValueError(f"max_refinements must be >= 1, got {max_refinements}")
        kernel = "fast" if kernel is None else str(kernel)
        if kernel not in ("fast", "reference"):
            raise ValueError(
                f"unknown trajectory kernel {kernel!r}; "
                "expected 'fast' or 'reference'"
            )
        self.kernel = kernel
        self.network = network
        self.serialization_mode = normalize_mode(serialization)
        self.refine_smax = refine_smax
        self.max_refinements = max_refinements
        self.incremental = incremental or cache is not None
        self.explain = explain
        self._cache = cache
        self._walk_cache = None
        self._obs = Instrumentation.create(collect_stats, progress)
        self._result: Optional[TrajectoryResult] = None
        self._prepared = False
        # shared-memory contract columns adopted from a coordinator
        # (``adopt_fast_tables``); None means build tables locally
        self._adopted_tables: Optional[Tuple[Dict[str, "np.ndarray"], Dict]] = None
        self._event_memo_enabled = True  # test hook: equivalence guard
        # explain=True recording: the Smax map the final sweep ran with
        # and that sweep's complete prefix-bound dictionary
        self._explain_smax: Optional[Dict[FlowPortKey, float]] = None
        self._explain_bounds: Optional[Dict[FlowPortKey, TrajectoryPathBound]] = None

    # ------------------------------------------------------------------

    def prepare(self, smax_seed: Optional[Dict[FlowPortKey, float]] = None) -> None:
        """Validate, seed ``Smax`` and precompute sweep-invariant state.

        ``smax_seed`` replaces the Network Calculus seeding — the batch
        engine computes the seed once on the coordinator and ships it to
        every worker instead of re-running the NC analysis per process.
        Idempotent: the first call wins.
        """
        if self._prepared:
            return
        network = self.network
        obs = self._obs
        with obs.tracer.span("trajectory.validate"):
            check_network(network)
            topological_port_order(network)  # raises CyclicRoutingError if cyclic

        if smax_seed is None:
            with obs.tracer.span("trajectory.nc_seed"):
                nc_seed = analyze_network_calculus(
                    network,
                    grouping=True,
                    incremental=self.incremental,
                    cache=self._cache,
                )
            smax_seed = seed_smax_from_netcalc(network, nc_seed)
        with obs.tracer.span("trajectory.precompute"):
            self._smin = compute_smin(network)
            self._smax: Dict[FlowPortKey, float] = dict(smax_seed)
            self._prefixes = tree_prefixes(network)
            self._precompute_structure()
        if self.incremental:
            # imported lazily: repro.incremental depends on this module
            from repro.incremental.cache import default_cache

            self._walk_cache = (
                self._cache if self._cache is not None else default_cache()
            )
            with obs.tracer.span("trajectory.walk_fingerprints"):
                self._prepare_walk_fingerprints()
        self._prepared = True

    def result_fingerprint(self) -> str:
        """Digest of the whole analysis' inputs (network + parameters)."""
        from repro.incremental.fingerprint import network_fingerprint, stable_digest

        return stable_digest(
            "trajresult",
            network_fingerprint(self.network),
            self.serialization_mode,
            self.refine_smax,
            self.max_refinements,
            # kernel tag: cached records embed n_candidates, which is
            # legitimately smaller under the fast kernel's pruning —
            # entries must never cross kernels
            self.kernel,
        )

    def analyze(self) -> TrajectoryResult:
        """Run the analysis and return (and cache) the result."""
        if self._result is not None:
            return self._result
        network = self.network
        obs = self._obs
        collect = obs.enabled

        # Whole-result reuse: only when this call would do the default
        # NC seeding itself (a custom prepare(smax_seed) is not covered
        # by the fingerprint) and no provenance is wanted (the replay
        # needs the final sweep's live state).
        result_cache = result_fp = None
        if self.incremental and not self._prepared and not self.explain:
            from repro.incremental.cache import default_cache

            result_cache = self._cache if self._cache is not None else default_cache()
            with obs.tracer.span("trajectory.result_probe"):
                result_fp = self.result_fingerprint()
                cached = result_cache.get("traj.result", result_fp)
            if cached is not None:
                result = TrajectoryResult(
                    serialization=cached.serialization,
                    refinement_iterations=cached.refinement_iterations,
                    paths=dict(cached.paths),
                )
                if collect:
                    obs.metrics.counter("trajectory.result_cache_hit", 1)
                    # the deterministic ledger sections travel with the
                    # cached result; the hit itself is recorded as an
                    # explicit cache entry, never silently absent
                    cached_cost = result_cache.get("traj.cost", result_fp)
                    ledger = (
                        cached_cost.snapshot()
                        if isinstance(cached_cost, CostLedger)
                        else CostLedger("trajectory")
                    )
                    ledger.record_cache("result", 1, 0)
                    stats = obs.export()
                    stats["cost"] = ledger.to_dict()
                    result.stats = stats
                _LOG.debug(
                    "trajectory result cache hit %s", kv(paths=len(result.paths))
                )
                self._result = result
                return result

        self.prepare()

        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        sweeps = 0
        sweep_trace: List[Dict[str, object]] = []
        # integer sums over the sweep's own bounds: cheap, and computed
        # whenever either a stats consumer or the result cache needs it
        # (a cold stats-off run must still persist the ledger so a warm
        # stats-on run reads identical deterministic sections)
        ledger = (
            CostLedger("trajectory")
            if collect or result_cache is not None
            else None
        )
        for _ in range(self.max_refinements):
            with obs.tracer.span("trajectory.sweep", sweep=sweeps + 1) as span:
                if self.explain:
                    # the last snapshot taken is the map the final
                    # sweep ran with — what the provenance replay reads
                    self._explain_smax = dict(self._smax)
                bounds = self._sweep()
                sweeps += 1
                stable = True
                smax_updates: Dict[FlowPortKey, float] = {}
                max_delta = 0.0
                if self.refine_smax:
                    smax_updates, max_delta = self.tighten_smax(bounds)
                    stable = not smax_updates
                if ledger is not None:
                    record_trajectory_sweep(
                        ledger, bounds, smax_updates=len(smax_updates)
                    )
                if collect:
                    span.attrs.update(smax_updates=len(smax_updates))
                    sweep_trace.append(
                        {
                            "sweep": sweeps,
                            "smax_updates": len(smax_updates),
                            "max_delta_us": round(max_delta, 6),
                        }
                    )
                _LOG.debug(
                    "sweep done %s",
                    kv(
                        sweep=sweeps,
                        smax_updates=len(smax_updates),
                        max_delta_us=max_delta,
                    ),
                )
            if stable:
                break

        result = self.build_result(bounds, sweeps)
        if ledger is not None:
            ledger.add_work("paths_bound", len(result.paths))
        if self.explain:
            self._explain_bounds = bounds
            with obs.tracer.span("trajectory.explain"):
                self._attach_provenance(result)
        if result_cache is not None and result_fp is not None:
            result_cache.put(
                "traj.result",
                result_fp,
                TrajectoryResult(
                    serialization=result.serialization,
                    refinement_iterations=result.refinement_iterations,
                    paths=dict(result.paths),
                ),
            )
            # snapshot: deterministic sections only, so a warm hit can
            # reconstruct them byte-identically while recording its own
            # cache tallies
            result_cache.put("traj.cost", result_fp, ledger.snapshot())
        if ledger is not None:
            for name, (hits, misses) in sorted(self.cache_stats().items()):
                ledger.record_cache(name, hits, misses)
            if result_cache is not None:
                ledger.record_cache("result", 0, 1)
        if collect:
            obs.metrics.counter("trajectory.sweeps", sweeps)
            obs.metrics.counter("trajectory.tree_ports_visited", sweeps * len(bounds))
            obs.metrics.counter(
                "trajectory.competitors_met",
                # repro-lint: allow[REPRO101] integer competitor counts; exact in floats
                sum(b.n_competitors for b in bounds.values()),
            )
            obs.metrics.counter(
                "trajectory.candidates_evaluated",
                # repro-lint: allow[REPRO101] integer candidate counts; exact in floats
                sum(b.n_candidates for b in bounds.values()),
            )
            obs.metrics.counter("trajectory.paths_bound", len(result.paths))
            for name, (hits, misses) in sorted(self.cache_stats().items()):
                obs.metrics.counter(f"trajectory.{name}_cache_hits", hits)
                obs.metrics.counter(f"trajectory.{name}_cache_misses", misses)
            stats = obs.export()
            stats["sweeps"] = sweep_trace
            stats["cost"] = ledger.to_dict()
            result.stats = stats
        _LOG.debug(
            "trajectory done %s",
            kv(
                sweeps=sweeps,
                paths=len(result.paths),
                serialization=self.serialization_mode,
            ),
        )
        self._result = result
        return result

    def _attach_provenance(self, result: TrajectoryResult) -> None:
        """Replay the final sweep and attach the per-path ledgers.

        Lazy import: the explain layer costs nothing unless requested.
        Requires ``_explain_smax`` / ``_explain_bounds`` to be set
        (done by :meth:`analyze`, or by the batch coordinator).
        """
        from repro.explain.trajectory import trajectory_provenance

        result.provenance = trajectory_provenance(self, result)

    def build_result(
        self, bounds: Dict[FlowPortKey, TrajectoryPathBound], sweeps: int
    ) -> TrajectoryResult:
        """Per-path result from one converged sweep's prefix bounds.

        Shared by :meth:`analyze` and the batch coordinator (which runs
        the sweeps remotely and only merges prefix bounds locally).
        """
        result = TrajectoryResult(
            serialization=self.serialization_mode, refinement_iterations=sweeps
        )
        for vl_name, path_index, node_path in self.network.flow_paths():
            last_port = (node_path[-2], node_path[-1])
            detail = bounds[(vl_name, last_port)]
            result.paths[(vl_name, path_index)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                port_ids=tuple((a, b) for a, b in zip(node_path, node_path[1:])),
                total_us=detail.total_us,
                critical_instant_us=detail.critical_instant_us,
                busy_period_us=detail.busy_period_us,
                workload_us=detail.workload_us,
                transition_us=detail.transition_us,
                latency_us=detail.latency_us,
                serialization_gain_us=detail.serialization_gain_us,
                n_competitors=detail.n_competitors,
                n_candidates=detail.n_candidates,
            )
        return result

    # ------------------------------------------------------------------
    # Structural precomputation (sweep-invariant)
    # ------------------------------------------------------------------

    def _precompute_structure(self) -> None:
        network = self.network
        # sorted flow tuple per port: a deterministic iteration order
        # regardless of process hash seed (frozenset order is not)
        self._port_vls: Dict[PortId, Tuple[str, ...]] = {
            pid: tuple(sorted(network.vls_at_port(pid)))
            for pid in network.used_ports()
        }
        # largest frame transmission time crossing each port (Delta term)
        self._port_max_c: Dict[PortId, float] = {}
        self._port_rate: Dict[PortId, float] = {}
        for pid, members in self._port_vls.items():
            rate = network.link_rate(*pid)
            self._port_rate[pid] = rate
            self._port_max_c[pid] = max(
                network.vl(v).s_max_bits / rate for v in members
            )
        # per-VL multicast tree: root port and children adjacency
        self._trees: Dict[str, Tuple[PortId, Dict[PortId, List[PortId]]]] = {}
        for vl_name in network.virtual_links:
            children: Dict[PortId, List[PortId]] = {}
            root: Optional[PortId] = None
            for path in network.vl(vl_name).paths:
                ports = [(a, b) for a, b in zip(path, path[1:])]
                root = ports[0]
                for parent, child in zip(ports, ports[1:]):
                    siblings = children.setdefault(parent, [])
                    if child not in siblings:
                        siblings.append(child)
            assert root is not None
            self._trees[vl_name] = (root, children)
        # upstream port of each VL at each of its tree ports
        self._upstream: Dict[FlowPortKey, Optional[PortId]] = {
            key: network.upstream_port(key[0], key[1]) for key in self._prefixes
        }
        # per-node memo caches (sweep- and flow-invariant quantities):
        # the source busy period only involves flows sourced at the root
        # ES port, all with zero arrival offset, so it is one number per
        # *node* shared by every VL of that port and every sweep; the
        # meeting structure (which competitors join at a port, and the
        # serialization credit they earn) is structural, so it is
        # computed on the first sweep and replayed afterwards.
        self._horizon_cache: Dict[PortId, float] = {}
        self._meeting_cache: Dict[
            FlowPortKey, Tuple[Tuple[str, ...], Tuple[str, ...], float]
        ] = {}
        # candidate-event memo: the jump instants of a competitor entry
        # depend only on (C, T, offset, horizon), and within one sweep
        # the same entry recurs at every meeting port of every studied
        # VL sharing it — cleared per sweep since offsets move between
        # sweeps (`_flow_events`).
        self._event_cache: Dict[
            Tuple[float, float, float, float], Tuple[float, Tuple[Tuple[float, float], ...]]
        ] = {}
        # per-sweep packed Smax slices, one per port (`_port_pack`) —
        # only filled when incremental, but cleared unconditionally
        self._port_packs: Dict[PortId, bytes] = {}
        self._cache_counters: Dict[str, List[int]] = {
            "horizon": [0, 0],
            "meetings": [0, 0],
            "events": [0, 0],
        }
        if self.incremental:
            self._cache_counters["walk"] = [0, 0]
        # owner-node technological latency per port (hot in every visit)
        self._port_lat: Dict[PortId, float] = {
            pid: network.node(pid[0]).technological_latency_us
            for pid in self._port_vls
        }
        if self.kernel == "fast":
            self._precompute_fast_tables()

    def _precompute_fast_tables(self) -> None:
        """Flat per-port competitor tables for the fast kernel.

        One tuple of parallel arrays per port, indexed by the position
        of each member in the port's sorted member tuple:

        ``(members, C, T, vl_index, upstream, Smin, position)``

        ``C`` is built with the exact expression the reference kernel
        evaluates per meeting (``vl.s_max_bits / rate``), so every
        float read from these tables is bit-identical to the dict walk.
        ``Smax`` is the only sweep-varying input; its per-port slices
        are rebuilt lazily each sweep (:meth:`_smax_slice`).
        """
        network = self.network
        vl_order = sorted(network.virtual_links)
        self._vl_index: Dict[str, int] = {
            name: index for index, name in enumerate(vl_order)
        }
        self._n_vls = len(vl_order)
        adopted_arrays: Optional[Dict[str, "np.ndarray"]] = None
        adopted_index: Dict[PortId, Tuple[int, int]] = {}
        if self._adopted_tables is not None:
            adopted_arrays, adopted_index = self._adopted_tables
        # per-port tuples plus their numpy mirrors for the batched fold
        # (`_batch_fold`) on wide ports; the fifth numpy column maps
        # each member's upstream port to a small per-port integer id
        # (-1 for source members) for the serialization-gain grouping.
        # A port covered by adopted shared-memory columns slices its
        # arrays zero-copy and lifts the scalars out of the slice —
        # the exporter built them with the exact expressions below, so
        # every float is bit-identical to a local build.
        self._port_tab: Dict[PortId, Tuple] = {}
        self._port_np: Dict[PortId, Tuple] = {}
        for pid, members in self._port_vls.items():
            span = adopted_index.get(pid)
            if span is not None and adopted_arrays is not None:
                lo, hi = span
                if hi - lo != len(members):
                    raise ValueError(
                        f"adopted fast tables do not match port {pid}: "
                        f"{hi - lo} rows for {len(members)} members"
                    )
                c_np = adopted_arrays["C"][lo:hi]
                t_np = adopted_arrays["T"][lo:hi]
                g_np = adopted_arrays["G"][lo:hi]
                smin_np = adopted_arrays["SMIN"][lo:hi]
                mup_np = adopted_arrays["MUP"][lo:hi]
                self._port_tab[pid] = (
                    members,
                    tuple(c_np.tolist()),
                    tuple(t_np.tolist()),
                    tuple(g_np.tolist()),
                    tuple(self._upstream[(m, pid)] for m in members),
                    tuple(smin_np.tolist()),
                    {m: index for index, m in enumerate(members)},
                )
                self._port_np[pid] = (c_np, t_np, g_np, smin_np, mup_np)
                continue
            rate = self._port_rate[pid]
            tab = (
                members,
                tuple(network.vl(m).s_max_bits / rate for m in members),
                tuple(network.vl(m).bag_us for m in members),
                tuple(self._vl_index[m] for m in members),
                tuple(self._upstream[(m, pid)] for m in members),
                tuple(self._smin[(m, pid)] for m in members),
                {m: index for index, m in enumerate(members)},
            )
            self._port_tab[pid] = tab
            upstream_ids: Dict[PortId, int] = {}
            mup_id = []
            for up in tab[4]:
                if up is None:
                    mup_id.append(-1)
                else:
                    mup_id.append(upstream_ids.setdefault(up, len(upstream_ids)))
            self._port_np[pid] = (
                np.array(tab[1], dtype=np.float64),
                np.array(tab[2], dtype=np.float64),
                np.array(tab[3], dtype=np.intp),
                np.array(tab[5], dtype=np.float64),
                np.array(mup_id, dtype=np.intp),
            )
        # (port, parent) -> bool column: does each member cross parent?
        # (the re-meeting test of `_discover_meetings`, vectorized)
        self._crosses_cache: Dict[Tuple[PortId, PortId], "np.ndarray"] = {}
        # shared-path meeting tree: the met bitmap at any walk node is
        # the union of the path ports' member sets — independent of
        # *which* member is the studied VL — so discovery results are
        # keyed by the port path from the root, not per VL.  Each node
        # is ``[entry, children, fold_cache]`` with ``children`` keyed
        # by port and ``fold_cache`` keyed by the fold inputs
        # ``(Smin_i, Smax_i, packed port Smax)`` — a hit replays the
        # node's batch bases and events bit for bit across sweeps
        self._meet_tree: Dict[PortId, list] = {}
        self._fast_tree_ports: Dict[str, Tuple[PortId, ...]] = {
            name: tuple(self._tree_ports(name)) for name in vl_order
        }
        # per-sweep Smax slices (cleared with the packs each sweep)
        self._port_smax: Dict[PortId, List[float]] = {}
        self._port_smax_np: Dict[PortId, "np.ndarray"] = {}
        # cross-sweep walk memo: vl -> (packed Smax slices, bounds);
        # a walk whose entire Smax input is unchanged since the last
        # sweep is replayed from here without touching the tree
        self._sweep_memo: Dict[str, Tuple[bytes, Dict]] = {}
        self._cache_counters["sweep_memo"] = [0, 0]
        # per-port structural digests feeding the cross-config
        # ``"traj.node"`` cache namespace (`_port_struct_pack`)
        self._port_struct_packs: Dict[PortId, bytes] = {}
        if self.incremental:
            self._cache_counters["node"] = [0, 0]

    def export_fast_tables(
        self,
    ) -> Tuple[Dict[str, "np.ndarray"], Dict[PortId, Tuple[int, int]]]:
        """Flat concatenation of the fast kernel's tables for shm shipping.

        Returns ``(columns, index)``: ``columns`` holds the per-port
        contract columns ``C``/``T``/``G``/``SMIN``/``MUP`` concatenated
        over the sorted port order plus the current ``Smax`` map packed
        over its sorted keys (``SMAX``); ``index`` maps each port to its
        ``(start, stop)`` slice.  A worker rebuilds bit-identical tables
        from these via :meth:`adopt_fast_tables` without re-walking the
        network contracts.
        """
        if self.kernel != "fast" or not self._prepared:
            raise RuntimeError(
                "export_fast_tables needs a prepared fast-kernel analyzer"
            )
        index: Dict[PortId, Tuple[int, int]] = {}
        parts: Dict[str, List["np.ndarray"]] = {
            "C": [], "T": [], "G": [], "SMIN": [], "MUP": []
        }
        start = 0
        for pid in sorted(self._port_np):
            c_np, t_np, g_np, smin_np, mup_np = self._port_np[pid]
            index[pid] = (start, start + len(c_np))
            start += len(c_np)
            parts["C"].append(c_np)
            parts["T"].append(t_np)
            parts["G"].append(g_np)
            parts["SMIN"].append(smin_np)
            parts["MUP"].append(mup_np)
        empty = {
            "C": np.float64, "T": np.float64, "G": np.intp,
            "SMIN": np.float64, "MUP": np.intp,
        }
        columns = {
            key: (
                np.concatenate(arrays)
                if arrays
                else np.empty(0, dtype=empty[key])
            )
            for key, arrays in parts.items()
        }
        columns["SMAX"] = np.array(
            [self._smax[key] for key in sorted(self._smax)], dtype=np.float64
        )
        return columns, index

    def adopt_fast_tables(
        self,
        columns: Dict[str, "np.ndarray"],
        index: Dict[PortId, Tuple[int, int]],
    ) -> Dict[FlowPortKey, float]:
        """Serve the fast kernel's contract columns from shared arrays.

        Must be called before :meth:`prepare`.  Returns the ``Smax``
        seed reconstructed from the exported pack — the key order is
        recomputed from the network (:func:`tree_prefixes` sorted), the
        same order :meth:`export_fast_tables` packed, so the floats land
        on their keys bit for bit.
        """
        if self._prepared:
            raise RuntimeError("adopt_fast_tables must precede prepare()")
        self._adopted_tables = (columns, dict(index))
        keys = sorted(tree_prefixes(self.network))
        smax = columns["SMAX"]
        if len(keys) != len(smax):
            raise ValueError(
                f"adopted Smax pack has {len(smax)} entries "
                f"for {len(keys)} tree prefixes"
            )
        return {key: float(smax[pos]) for pos, key in enumerate(keys)}

    def _smax_slice(self, port: PortId) -> List[float]:
        """This sweep's ``Smax`` values of one port's members, in order."""
        arr = self._port_smax.get(port)
        if arr is None:
            smax = self._smax
            arr = [smax[(m, port)] for m in self._port_vls[port]]
            self._port_smax[port] = arr
        return arr

    def _smax_np(self, port: PortId) -> "np.ndarray":
        """:meth:`_smax_slice` as a numpy column (same floats)."""
        arr = self._port_smax_np.get(port)
        if arr is None:
            arr = np.array(self._smax_slice(port), dtype=np.float64)
            self._port_smax_np[port] = arr
        return arr

    def _tree_ports(self, vl_name: str) -> List[PortId]:
        """One VL's tree ports in the DFS preorder :meth:`_walk_tree` visits."""
        root, children = self._trees[vl_name]
        out: List[PortId] = []
        stack = [root]
        while stack:
            port = stack.pop()
            out.append(port)
            stack.extend(reversed(children.get(port, ())))
        return out

    def _prepare_walk_fingerprints(self) -> None:
        """Per-VL structural digest + the ``Smax`` slice each walk reads.

        A walk of ``v`` observes: its own contract and tree; at each
        tree port the rate, largest frame, owner latency, and every
        crossing flow's contract (``C``/``T`` terms, gain groups and
        the re-meeting test all derive from contracts + routing) and
        upstream port; the ``Smin`` entries at those ports; the
        serialization mode — all sweep-invariant, folded into
        ``_walk_struct_fp`` here — plus the current ``Smax`` values of
        every member at every tree port, hashed per sweep in
        :meth:`sweep_vls`.  Together these cover every input of
        :meth:`_walk_tree` bit for bit, so equal fingerprints
        guarantee an identical walk result.

        The ``Smax`` slice is packed *per port* (``_port_pack``), not
        per VL: many VLs share a port, and packing each port's member
        slice once per sweep instead of once per sharing VL drops the
        fingerprint cost from |VLs|x|tree|x|members| float reads to
        |ports|x|members|.  Concatenating per-port packs over
        ``_walk_tree_ports`` feeds the hash exactly the same bytes in
        the same order as the flat per-VL slice did (members per port,
        ports in tree order), so the resulting digest — and therefore
        every cache address — is bit-identical to the naive packing.
        """
        from repro.incremental.fingerprint import stable_digest, vl_fingerprint

        network = self.network
        contracts = {
            name: vl_fingerprint(network.vl(name))
            for name in sorted(network.virtual_links)
        }
        self._walk_tree_ports: Dict[str, Tuple[PortId, ...]] = {}
        self._walk_struct_fp: Dict[str, bytes] = {}
        for vl_name in sorted(network.virtual_links):
            # the kernel tag keeps cached walk records (which embed the
            # kernel-dependent n_candidates) from crossing kernels
            parts: List[object] = [
                self.serialization_mode, self.kernel, contracts[vl_name]
            ]
            tree_ports = tuple(self._tree_ports(vl_name))
            for port in tree_ports:
                members = self._port_vls[port]
                parts.append(
                    (
                        port,
                        float(self._port_rate[port]),
                        float(self._port_max_c[port]),
                        float(network.node(port[0]).technological_latency_us),
                        tuple(
                            (m, contracts[m], self._upstream[(m, port)])
                            for m in members
                        ),
                        tuple(float(self._smin[(m, port)]) for m in members),
                    )
                )
            self._walk_tree_ports[vl_name] = tree_ports
            self._walk_struct_fp[vl_name] = stable_digest(
                "trajwalk", *parts
            ).encode()

    def _port_pack(self, port: PortId) -> bytes:
        """This sweep's packed ``Smax`` slice of one port's members."""
        pack = self._port_packs.get(port)
        if pack is None:
            from repro.incremental.fingerprint import pack_floats

            smax = self._smax
            pack = pack_floats([smax[(m, port)] for m in self._port_vls[port]])
            self._port_packs[port] = pack
        return pack

    def _walk_fingerprint(self, vl_name: str) -> str:
        """Digest of one walk's complete inputs under the current ``Smax``."""
        digest = hashlib.sha256(self._walk_struct_fp[vl_name])
        for port in self._walk_tree_ports[vl_name]:
            digest.update(self._port_pack(port))
        return digest.hexdigest()

    def _port_struct_pack(self, port: PortId) -> bytes:
        """Digest of one port's sweep-invariant competitor table.

        Covers exactly the structural inputs a node fold reads from the
        flat tables — the sorted member names and their ``C`` / ``T`` /
        ``Smin`` columns.  Deliberately *excludes* the global VL index
        column (membership bookkeeping, never a cached float) and the
        upstream grouping (serialization gain is not part of the cached
        fold), so structurally identical ports hash alike even when the
        surrounding configuration differs.
        """
        pack = self._port_struct_packs.get(port)
        if pack is None:
            from repro.incremental.fingerprint import pack_floats

            members, mc, mt, _mg, _mup, msmin, _mpos = self._port_tab[port]
            digest = hashlib.sha256("\x00".join(members).encode())
            digest.update(pack_floats(mc))
            digest.update(pack_floats(mt))
            digest.update(pack_floats(msmin))
            pack = digest.digest()
            self._port_struct_packs[port] = pack
        return pack

    def _node_fp(self, parent_fp: Optional[bytes], port: PortId) -> bytes:
        """Chained structural fingerprint of one meeting-tree node.

        A node's batch fold is a function of the port path walked from
        the root (which determines the already-met set and therefore
        the added positions) plus the path ports' competitor tables —
        so the fingerprint chains each path port's
        :meth:`_port_struct_pack` down the DFS, seeded with the
        serialization mode at the root.  The sweep-varying inputs
        (horizon, ``Smin``/``Smax`` of the studied VL, the port's packed
        ``Smax`` slice) are appended per entry at the probe site.
        """
        seed = (
            parent_fp
            if parent_fp is not None
            else f"trajnode:{self.serialization_mode}".encode()
        )
        return hashlib.sha256(seed + self._port_struct_pack(port)).digest()

    def cache_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-cache ``(hits, misses)`` of the per-node memo caches."""
        if not self._prepared:
            return {}
        return {
            name: (hits, misses)
            for name, (hits, misses) in self._cache_counters.items()
        }

    # ------------------------------------------------------------------
    # One fixed-point sweep
    # ------------------------------------------------------------------

    def smax_snapshot(self) -> Dict[FlowPortKey, float]:
        """A copy of the current ``Smax`` map (batch coordinator seed)."""
        if not self._prepared:
            raise RuntimeError("prepare() must run before smax_snapshot()")
        return dict(self._smax)

    def tighten_smax(
        self, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> Tuple[Dict[FlowPortKey, float], float]:
        """One descending update of Smax.

        Returns ``(tightened entries, largest tightening in us)`` —
        ``({}, 0.0)`` means the fixed point is stable.  The entry map is
        what the batch engine broadcasts to its workers between sweeps.

        A frame of ``v`` arrives in the queue of port ``p_k`` at most
        ``R_v(prefix through p_{k-1}) + latency(p_k owner)`` after its
        release; taking the min with the previous value keeps the map a
        sound upper bound throughout.
        """
        updates: Dict[FlowPortKey, float] = {}
        max_delta = 0.0
        for (vl_name, pid), prefix in self._prefixes.items():
            if len(prefix) < 2:
                continue
            upstream = prefix[-2]
            candidate = (
                bounds[(vl_name, upstream)].total_us
                + self.network.node(pid[0]).technological_latency_us
            )
            delta = self._smax[(vl_name, pid)] - candidate
            if delta > _EPS:
                self._smax[(vl_name, pid)] = candidate
                updates[(vl_name, pid)] = candidate
                if delta > max_delta:
                    max_delta = delta
        return updates, max_delta

    def apply_smax_updates(self, updates: Dict[FlowPortKey, float]) -> None:
        """Install coordinator-tightened ``Smax`` entries (batch workers)."""
        self._smax.update(updates)

    def _sweep(self) -> Dict[FlowPortKey, TrajectoryPathBound]:
        return self.sweep_vls(list(self.network.virtual_links))

    def sweep_vls(
        self, vl_names: List[str]
    ) -> Dict[FlowPortKey, TrajectoryPathBound]:
        """Walk the given VLs' trees once with the current ``Smax`` map.

        The prefix bounds of different VLs are independent within one
        sweep, which is what lets the batch engine fan a sweep's walks
        across worker processes and merge the per-chunk dictionaries in
        any order without changing a single bit of the result.
        """
        if not self._prepared:
            raise RuntimeError("prepare() must run before sweep_vls()")
        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        progress = self._obs.progress
        cache = self._walk_cache
        fast = self.kernel == "fast"
        # the candidate-event memo persists across sweeps on purpose:
        # its keys are the exact fold floats ``(C, T, offset, horizon)``
        # so a stale entry is unreachable, and most offsets survive a
        # tightening round unchanged (only ports whose Smax moved shift
        # them) — later sweeps hit where they used to rebuild.
        # port packs and Smax slices, by contrast, MUST be dropped:
        # Smax tightened since the last sweep, and a stale pack would
        # alias two different walk inputs onto one fingerprint
        self._port_packs.clear()
        if fast:
            self._port_smax.clear()
            self._port_smax_np.clear()
        for index, vl_name in enumerate(vl_names):
            if progress:
                progress.update("trajectory.sweep", index, len(vl_names))
            if fast:
                # cross-sweep memo: a walk reads only its tree ports'
                # Smax slices beyond sweep-invariant structure, so an
                # unchanged packed slice sequence proves the previous
                # sweep's bounds replay bit for bit
                memo_counters = self._cache_counters["sweep_memo"]
                memo_key = b"".join(
                    self._port_pack(port)
                    for port in self._fast_tree_ports[vl_name]
                )
                memo = self._sweep_memo.get(vl_name)
                if memo is not None and memo[0] == memo_key:
                    memo_counters[0] += 1
                    bounds.update(memo[1])
                    continue
                memo_counters[1] += 1
                local: Dict[FlowPortKey, TrajectoryPathBound] = {}
                if cache is None:
                    self._walk_tree_fast(vl_name, local)
                else:
                    walk_counters = self._cache_counters["walk"]
                    fingerprint = self._walk_fingerprint(vl_name)
                    cached = cache.get("traj.walk", fingerprint)
                    if cached is not None:
                        walk_counters[0] += 1
                        local = cached
                    else:
                        walk_counters[1] += 1
                        self._walk_tree_fast(vl_name, local)
                        cache.put("traj.walk", fingerprint, local)
                self._sweep_memo[vl_name] = (memo_key, local)
                bounds.update(local)
                continue
            if cache is None:
                self._walk_tree(vl_name, bounds)
                continue
            walk_counters = self._cache_counters["walk"]
            fingerprint = self._walk_fingerprint(vl_name)
            cached = cache.get("traj.walk", fingerprint)
            if cached is not None:
                walk_counters[0] += 1
                bounds.update(cached)
            else:
                walk_counters[1] += 1
                local = {}
                self._walk_tree(vl_name, local)
                cache.put("traj.walk", fingerprint, local)
                bounds.update(local)
        if progress:
            progress.update("trajectory.sweep", len(vl_names), len(vl_names))
        return bounds

    def _competitor_entry(
        self, vl_name: str, other: str, port: PortId
    ) -> Tuple[float, float, float]:
        """``(C, T, A)`` of a competitor first met (or re-met) at ``port``."""
        other_vl = self.network.vl(other)
        offset = self._smax[(other, port)] - self._smin[(vl_name, port)]
        if self.serialization_mode == "safe":
            # Catch-up correction: a frame of `other` released *after*
            # the studied packet can still reach this queue first
            # whenever the studied flow's worst transit here (Smax_i)
            # exceeds the competitor's best (Smin_j).  The historical
            # Martin & Minet alignment misses those frames when
            # Smax_i + Smin_i > Smax_j + Smin_j, which is the
            # random_network(589) soundness violation.
            offset = max(
                offset, self._smax[(vl_name, port)] - self._smin[(other, port)]
            )
        return (
            other_vl.s_max_bits / self._port_rate[port],
            other_vl.bag_us,
            offset,
        )

    def _discover_meetings(
        self,
        vl_name: str,
        port: PortId,
        competitors: Dict[str, Tuple[float, float, float]],
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], float]:
        """Which flows join the studied path at ``port``, and their credit.

        Returns ``(added, readded, serialization_gain)``.  ``added`` are
        flows met for the first time.  ``readded`` are flows already
        counted upstream that *diverged from the studied path and meet
        it again* here — possible on meshed topologies, where a
        competitor's frames can overtake the studied packet off-path and
        delay it a second time.  The Martin & Minet tree formulation
        counts every competitor exactly once (sound on trees, where a
        frame ahead in a FIFO queue stays ahead for the whole shared
        segment); ``safe`` mode charges every re-meeting as an
        *additional* fresh meeting, while the historical ``paper`` and
        ``windowed`` reproduction modes keep the counted-once treatment
        and therefore remain optimistic on such configurations.

        The serialization gain is computed from first meetings only, to
        match the historical credit exactly (it is zero in safe mode
        anyway).

        The result is structural — independent of the sweep's ``Smax``
        values — so callers memoize it per ``(VL, port)``.
        """
        parent = self._upstream[(vl_name, port)]
        added: List[str] = []
        readded: List[str] = []
        for other in self._port_vls[port]:
            if other == vl_name:
                continue
            if other not in competitors:
                added.append(other)
            elif parent is not None and (other, parent) not in self._prefixes:
                # `other` was met upstream but does not cross the port we
                # arrived from: it left the path and is rejoining here.
                readded.append(other)

        mode = self.serialization_mode
        port_gain = 0.0
        if mode != "safe" and added:
            rate = self._port_rate[port]
            groups: Dict[PortId, List[float]] = {}
            for other in added:
                upstream = self._upstream[(other, port)]
                if upstream is None:
                    continue
                groups.setdefault(upstream, []).append(
                    self.network.vl(other).s_max_bits / rate
                )
            spans = [
                math.fsum(members) - max(members)
                for members in groups.values()
                if len(members) >= 2
            ]
            if spans:
                port_gain = math.fsum(spans) if mode == "paper" else max(spans)
        return tuple(added), tuple(readded), port_gain

    def _root_horizon(self, root: PortId) -> float:
        """Source busy-period bound, memoized per root port.

        Every flow of an ES output port is sourced at that ES, so all
        arrival offsets are zero and the bound is shared by every VL of
        the port and every sweep.
        """
        hits_misses = self._cache_counters["horizon"]
        cached = self._horizon_cache.get(root)
        if cached is not None:
            hits_misses[0] += 1
            return cached
        hits_misses[1] += 1
        rate = self._port_rate[root]
        horizon = busy_period_bound(
            [
                (self.network.vl(name).s_max_bits / rate, self.network.vl(name).bag_us, 0.0)
                for name in self._port_vls[root]
            ]
        )
        self._horizon_cache[root] = horizon
        return horizon

    def _walk_tree(
        self, vl_name: str, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> None:
        """DFS one VL's tree, maintaining the interference state.

        State carried down the recursion (and rolled back on return):

        * ``competitors`` — ``{name: (C, T, A)}`` for every flow met so
          far (the studied flow included, with ``A = 0``);
        * ``base_workload`` — ``sum_j N_j(0) C_j`` over that set;
        * ``events`` — candidate jump instants ``(t, C)`` inside the
          source busy period;
        * per-port serialization groups for the gain bookkeeping.
        """
        network = self.network
        vl = network.vl(vl_name)
        root, children = self._trees[vl_name]

        own_c = vl.s_max_bits / self._port_rate[root]
        competitors: Dict[object, Tuple[float, float, float]] = {
            vl_name: (own_c, vl.bag_us, 0.0)
        }
        safe = self.serialization_mode == "safe"

        # ---- root-level quantities -----------------------------------
        root_added: List[str] = []
        for other in self._port_vls[root]:
            if other == vl_name:
                continue
            competitors[other] = self._competitor_entry(vl_name, other, root)
            root_added.append(other)

        horizon = self._root_horizon(root)

        base_workload = 0.0
        events: List[Tuple[float, float]] = []
        event_cache = self._event_cache
        event_counters = self._cache_counters["events"]
        memo_enabled = self._event_memo_enabled

        def add_flow(entry: Tuple[float, float, float]) -> int:
            """Fold one flow into the workload state; return #events added."""
            nonlocal base_workload
            c, period, offset = entry
            if memo_enabled:
                key = (c, period, offset, horizon)
                cached = event_cache.get(key)
                if cached is None:
                    event_counters[1] += 1
                    cached = _flow_events(c, period, offset, horizon)
                    event_cache[key] = cached
                else:
                    event_counters[0] += 1
                base, flow_events = cached
            else:
                base, flow_events = _flow_events(c, period, offset, horizon)
            base_workload += base
            events.extend(flow_events)
            return len(flow_events)

        def remove_flow(entry: Tuple[float, float, float]) -> None:
            nonlocal base_workload
            c, period, offset = entry
            base_workload -= interference_count(0.0, offset, period) * c

        add_flow(competitors[vl_name])
        for name in root_added:
            add_flow(competitors[name])

        meeting_cache = self._meeting_cache
        meeting_counters = self._cache_counters["meetings"]

        # ---- recursive descent ---------------------------------------
        def visit(
            port: PortId,
            depth: int,
            transitions: float,
            latencies: float,
            gain: float,
            n_met: int,
        ) -> None:
            latencies += network.node(port[0]).technological_latency_us
            if depth > 0:
                transitions += self._port_max_c[port]

            added: Tuple[str, ...] = ()
            readded: Tuple[str, ...] = ()
            port_gain = 0.0
            rollback: List[object] = []
            added_events = 0
            if depth > 0:
                key = (vl_name, port)
                cached = meeting_cache.get(key)
                if cached is None:
                    meeting_counters[1] += 1
                    cached = self._discover_meetings(vl_name, port, competitors)
                    meeting_cache[key] = cached
                else:
                    meeting_counters[0] += 1
                added, readded, port_gain = cached
                for other in added:
                    entry = self._competitor_entry(vl_name, other, port)
                    competitors[other] = entry
                    rollback.append(other)
                    added_events += add_flow(entry)
                if safe:
                    # A re-met competitor's frames can overtake the
                    # studied packet on the off-path detour, so they may
                    # interfere again here.  Charge the re-meeting as an
                    # extra competitor (the first meeting's charge stays
                    # in place); synthetic keys keep the name-membership
                    # test in `_discover_meetings` intact.
                    for other in readded:
                        entry = self._competitor_entry(vl_name, other, port)
                        remeet_key = (other, port)
                        competitors[remeet_key] = entry
                        rollback.append(remeet_key)
                        added_events += add_flow(entry)
                    n_met += len(readded)
            gain += port_gain
            n_met += len(added)

            constant = transitions + latencies - gain
            best, best_t, best_w, n_cand = self._maximize(
                base_workload, events, constant
            )
            bounds[(vl_name, port)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=-1,  # prefix record; path index filled by analyze()
                node_path=(),
                port_ids=(port,),
                total_us=best,
                critical_instant_us=best_t,
                busy_period_us=horizon,
                workload_us=best_w,
                transition_us=transitions,
                latency_us=latencies,
                serialization_gain_us=gain,
                n_competitors=n_met,
                n_candidates=n_cand,
            )

            for child in children.get(port, ()):
                visit(child, depth + 1, transitions, latencies, gain, n_met)

            # rollback this port's additions
            for entry_key in rollback:
                remove_flow(competitors.pop(entry_key))
            if added_events:
                del events[-added_events:]

        visit(root, 0, 0.0, 0.0, 0.0, len(root_added))

    @staticmethod
    def _maximize(
        base_workload: float,
        events: List[Tuple[float, float]],
        constant: float,
    ) -> Tuple[float, float, float, int]:
        """Maximize ``W(t) + constant - t`` over the candidate instants.

        ``W(0) = base_workload``; each event ``(t, C)`` raises the
        workload by ``C`` at instant ``t``.  Between events the
        objective strictly decreases, so only ``t = 0`` and the event
        instants need evaluation.  Returns ``(best value, argmax t,
        workload at argmax, number of candidates)``.
        """
        best_value = base_workload + constant
        best_t = 0.0
        best_workload = base_workload
        n_candidates = 1
        if not events:
            return best_value, best_t, best_workload, n_candidates

        workload = base_workload
        idx = 0
        ordered = sorted(events)
        while idx < len(ordered):
            t = ordered[idx][0]
            while idx < len(ordered) and ordered[idx][0] <= t + _EPS:
                workload += ordered[idx][1]
                idx += 1
            n_candidates += 1
            value = workload + constant - t
            if value > best_value + _EPS:
                best_value = value
                best_t = t
                best_workload = workload
        return best_value, best_t, best_workload, n_candidates

    # ------------------------------------------------------------------
    # Fast kernel (kernel="fast"): bit-identical twin of _walk_tree
    # ------------------------------------------------------------------

    def _discover_meetings_fast(
        self, port: PortId, parent: Optional[PortId], metview: "np.ndarray"
    ) -> Tuple:
        """Index form of :meth:`_discover_meetings` over the flat tables.

        ``metview`` is the walk's membership bitmap over global VL
        indices — the exact same set the reference kernel represents
        with its ``competitors`` dict keys (re-met flows enter that dict
        under synthetic tuple keys and therefore never flip a name's
        membership, which is why the bitmap needs no re-meeting marks).
        Every unmet member joins here, so the added set is one vectorized
        bitmap gather; only already-met members need the per-member
        rejoin test.  The serialization-gain floats replay the reference
        expression operation for operation: group insertion follows the
        added order, members fold with ``math.fsum``.

        The result depends only on the port path walked from the root
        (the bitmap at a node is the union of the path ports' member
        sets, whichever member is the studied VL), so callers key it in
        the shared :attr:`_meet_tree` rather than per VL.

        Returns ``(n_added, added, readded, gain, vec, names)`` with
        positions into the port's member tuple; for batches wide
        enough for :func:`_batch_fold`, ``vec`` carries the pre-sliced
        numpy columns ``(positions, vl indices, C, T, Smin)`` and
        ``added`` is left empty (the batch path never iterates
        positions).  ``names`` is the name-level
        ``(added, readded, gain)`` triple mirrored into
        ``_meeting_cache`` for provenance replay and tests.
        """
        members, _mc, _mt, _mg, _mup, _msmin, _mpos = self._port_tab[port]
        mc_np, mt_np, mg_np, msmin_np, mup_id = self._port_np[port]
        prefixes = self._prefixes
        mask = metview[mg_np] != 0
        added_np = (~mask).nonzero()[0]
        n_added = int(added_np.size)

        # re-meetings: an already-met member that does not cross the
        # port we arrived from left the path and rejoins here.  The
        # studied flow itself crosses the parent by construction, so it
        # drops out of the candidate set with the bitmap test.
        readded: Tuple[int, ...] = ()
        if parent is not None and n_added < len(members) - 1:
            crosses = self._crosses_cache.get((port, parent))
            if crosses is None:
                crosses = np.array(
                    [(m, parent) in prefixes for m in members], dtype=bool
                )
                self._crosses_cache[(port, parent)] = crosses
            re_np = (mask & ~crosses).nonzero()[0]
            if re_np.size:
                readded = tuple(re_np.tolist())

        mode = self.serialization_mode
        port_gain = 0.0
        if mode != "safe" and n_added:
            # serialization credit over first meetings, grouped by the
            # competitors' upstream port.  `math.fsum` is the exact
            # (correctly rounded) sum and `max` is order-free, so the
            # segment order here cannot drift from the reference's
            # insertion-ordered dict walk.
            uid = mup_id[added_np]
            valid = (uid >= 0).nonzero()[0]
            if valid.size >= 2:
                order = valid[np.argsort(uid[valid], kind="stable")]
                u_sorted = uid[order]
                c_sorted = mc_np[added_np[order]]
                cuts = np.flatnonzero(np.diff(u_sorted)) + 1
                starts = [0, *cuts.tolist()]
                ends = [*cuts.tolist(), int(u_sorted.size)]
                spans = []
                for s, e in zip(starts, ends):
                    if e - s >= 2:
                        group = c_sorted[s:e].tolist()
                        spans.append(math.fsum(group) - max(group))
                if spans:
                    port_gain = math.fsum(spans) if mode == "paper" else max(spans)
        names = (
            tuple(map(members.__getitem__, added_np.tolist())),
            tuple(map(members.__getitem__, readded)),
            port_gain,
        )
        if n_added >= _VEC_MIN:
            vec = (
                added_np,
                mg_np[added_np],
                mc_np[added_np],
                mt_np[added_np],
                msmin_np[added_np],
            )
            added: Tuple[int, ...] = ()
        else:
            vec = None
            added = tuple(added_np.tolist())
        return n_added, added, readded, port_gain, vec, names

    def _walk_tree_fast(
        self, vl_name: str, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> None:
        """Flat-table DFS of one VL's tree — bit-identical to the reference.

        Every float the reference walk computes is reproduced here by
        the same expression in the same order: the base workload grows
        by sequential ``+=`` of the memoized per-flow bases in the
        reference's add order (own flow, root members, then each port's
        added/re-added members in sorted-member order) and shrinks on
        backtrack by ``-=`` of the *same stored floats* in the same
        order (never by restoring a saved value — float addition does
        not cancel exactly).  What changes is the bookkeeping around
        those operations: competitor contracts come from parallel
        arrays instead of attribute-property chains, membership is a
        bytearray over VL indices instead of dict lookups, and the
        meeting structure is replayed from the shared per-path index
        tuples of :attr:`_meet_tree` after the first walk of each
        distinct port path.
        """
        network = self.network
        vl = network.vl(vl_name)
        root, children = self._trees[vl_name]
        safe = self.serialization_mode == "safe"
        self_g = self._vl_index[vl_name]
        smin = self._smin
        port_tab = self._port_tab
        port_lat = self._port_lat
        port_max_c = self._port_max_c
        event_cache = self._event_cache
        event_counters = self._cache_counters["events"]
        memo_enabled = self._event_memo_enabled
        meet_tree = self._meet_tree
        meeting_cache = self._meeting_cache
        meeting_counters = self._cache_counters["meetings"]
        maximize = self._maximize_fast
        discover = self._discover_meetings_fast
        smax_slice = self._smax_slice
        smax_np = self._smax_np
        port_pack = self._port_pack
        node_cache = self._walk_cache
        node_counters = self._cache_counters.get("node")
        node_fp = self._node_fp

        horizon = self._root_horizon(root)
        met = bytearray(self._n_vls)
        met[self_g] = 1
        # zero-copy numpy view over the bitmap: scalar paths poke the
        # bytearray, batch paths gather/scatter through the view
        metview = np.frombuffer(met, dtype=np.uint8)

        base_workload = 0.0
        events: List[Tuple[float, float]] = []

        def fold(c: float, period: float, offset: float) -> Tuple[float, int]:
            """Add one flow's base and events; return them for rollback."""
            nonlocal base_workload
            if memo_enabled:
                key = (c, period, offset, horizon)
                cached = event_cache.get(key)
                if cached is None:
                    event_counters[1] += 1
                    cached = _flow_events(c, period, offset, horizon)
                    event_cache[key] = cached
                else:
                    event_counters[0] += 1
            else:
                cached = _flow_events(c, period, offset, horizon)
            base, flow_events = cached
            base_workload += base
            events.extend(flow_events)
            return base, len(flow_events)

        def fold_events(c: float, period: float, offset: float) -> int:
            """Events-only fold for flows whose base came from a batch."""
            if memo_enabled:
                key = (c, period, offset, horizon)
                cached = event_cache.get(key)
                if cached is None:
                    event_counters[1] += 1
                    cached = _flow_events(c, period, offset, horizon)
                    event_cache[key] = cached
                else:
                    event_counters[0] += 1
            else:
                cached = _flow_events(c, period, offset, horizon)
            flow_events = cached[1]
            events.extend(flow_events)
            return len(flow_events)

        # ---- root-level folds (reference order: own flow, then the
        # root port's other members in sorted-member order) -----------
        own_c = vl.s_max_bits / self._port_rate[root]
        fold(own_c, vl.bag_us, 0.0)
        _members, mc, mt, mg, _mup, msmin, mpos = port_tab[root]
        smax_arr = self._smax_slice(root)
        smin_self = smin[(vl_name, root)]
        n_root = 0
        if safe:
            smax_self = smax_arr[mpos[vl_name]]
            for index, g in enumerate(mg):
                if g == self_g:
                    continue
                first = smax_arr[index] - smin_self
                second = smax_self - msmin[index]
                fold(mc[index], mt[index], first if first >= second else second)
                met[g] = 1
                n_root += 1
        else:
            for index, g in enumerate(mg):
                if g == self_g:
                    continue
                fold(mc[index], mt[index], smax_arr[index] - smin_self)
                met[g] = 1
                n_root += 1

        # ---- recursive descent ---------------------------------------
        def visit(
            port: PortId,
            node: list,
            parent: Optional[PortId],
            depth: int,
            transitions: float,
            latencies: float,
            gain: float,
            n_met: int,
        ) -> None:
            nonlocal base_workload
            latencies += port_lat[port]
            if depth > 0:
                transitions += port_max_c[port]

            n_added = 0
            added_idx: Tuple[int, ...] = ()
            mg_port: Tuple[int, ...] = ()
            vec = None
            folded_negs = None
            removed: List[float] = []
            added_events = 0
            if depth > 0:
                meetings = node[0]
                if meetings is None:
                    meeting_counters[1] += 1
                    meetings = discover(port, parent, metview)
                    node[0] = meetings
                else:
                    meeting_counters[0] += 1
                n_added, added_idx, readded_idx, port_gain, vec, names = meetings
                # keep the name-level view in sync: provenance replay
                # (and tests poking at internals) read `_meeting_cache`
                # regardless of which kernel ran the sweeps
                key = (vl_name, port)
                if key not in meeting_cache:
                    meeting_cache[key] = names
                if n_added or (safe and readded_idx):
                    _m, mc, mt, _mg, _mu, msmin, mpos = port_tab[port]
                    mg_port = _mg
                    smax_arr = smax_slice(port)
                    smin_self = smin[(vl_name, port)]
                    smax_self = smax_arr[mpos[vl_name]] if safe else 0.0
                    if vec is not None:
                        # wide batch: bases elementwise, events (rare)
                        # through the exact scalar path.  The node fold
                        # cache replays both across sweeps while the
                        # inputs (Smin_i, Smax_i, the port's packed
                        # Smax slice) are unchanged.
                        pos_a, gidx_a, c_a, t_a, ms_a = vec
                        fkey = (smin_self, smax_self, port_pack(port))
                        cached_fold = node[2].get(fkey)
                        entry_fp = None
                        if cached_fold is None and node_cache is not None:
                            # cross-config probe: the shared BoundCache
                            # serves structurally identical node folds
                            # computed by other configs and processes
                            entry_fp = hashlib.sha256(
                                node[3]
                                + _pack_fold_floats(
                                    horizon, smin_self, smax_self
                                )
                                + fkey[2]
                            ).hexdigest()
                            cached_fold = node_cache.get("traj.node", entry_fp)
                            if cached_fold is not None:
                                node_counters[0] += 1
                                node[2][fkey] = cached_fold
                            else:
                                node_counters[1] += 1
                        if cached_fold is None:
                            offs = smax_np(port)[pos_a] - smin_self
                            if safe:
                                alt = smax_self - ms_a
                                offs = np.where(offs >= alt, offs, alt)
                            batch_bases, maybe = _batch_fold(
                                c_a, t_a, offs, horizon
                            )
                            folded = tuple(batch_bases.tolist())
                            folded_negs = tuple((-batch_bases).tolist())
                            base_workload = _replay_add(
                                base_workload, folded
                            )
                            event_start = len(events)
                            for pos in maybe.tolist():
                                added_events += fold_events(
                                    float(c_a[pos]),
                                    float(t_a[pos]),
                                    float(offs[pos]),
                                )
                            fold_value = (
                                folded,
                                folded_negs,
                                tuple(events[event_start:]),
                            )
                            node[2][fkey] = fold_value
                            if entry_fp is not None:
                                node_cache.put(
                                    "traj.node", entry_fp, fold_value
                                )
                        else:
                            folded, folded_negs, batch_events = cached_fold
                            base_workload = _replay_add(
                                base_workload, folded
                            )
                            events.extend(batch_events)
                            added_events = len(batch_events)
                        metview[gidx_a] = 1
                    elif safe:
                        for index in added_idx:
                            first = smax_arr[index] - smin_self
                            second = smax_self - msmin[index]
                            base, n_events = fold(
                                mc[index],
                                mt[index],
                                first if first >= second else second,
                            )
                            removed.append(base)
                            added_events += n_events
                            met[mg_port[index]] = 1
                    else:
                        for index in added_idx:
                            base, n_events = fold(
                                mc[index], mt[index], smax_arr[index] - smin_self
                            )
                            removed.append(base)
                            added_events += n_events
                            met[mg_port[index]] = 1
                    if safe:
                        # re-met competitors charge again (reference
                        # semantics); they are already member-marked
                        for index in readded_idx:
                            first = smax_arr[index] - smin_self
                            second = smax_self - msmin[index]
                            base, n_events = fold(
                                mc[index],
                                mt[index],
                                first if first >= second else second,
                            )
                            removed.append(base)
                            added_events += n_events
                if safe:
                    n_met += len(readded_idx)
                gain += port_gain
                n_met += n_added

            constant = transitions + latencies - gain
            best, best_t, best_w, n_cand = maximize(
                base_workload, events, constant
            )
            bounds[(vl_name, port)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=-1,  # prefix record; path index filled by analyze()
                node_path=(),
                port_ids=(port,),
                total_us=best,
                critical_instant_us=best_t,
                busy_period_us=horizon,
                workload_us=best_w,
                transition_us=transitions,
                latency_us=latencies,
                serialization_gain_us=gain,
                n_competitors=n_met,
                n_candidates=n_cand,
            )

            kids = node[1]
            for child in children.get(port, ()):
                child_node = kids.get(child)
                if child_node is None:
                    child_node = [None, {}, {}, node_fp(node[3], child)]
                    kids[child] = child_node
                visit(
                    child, child_node, port, depth + 1,
                    transitions, latencies, gain, n_met,
                )

            # rollback in add order, subtracting the stored floats
            # (batch bases were added first, then any readded scalars)
            if folded_negs is not None:
                base_workload = _replay_add(base_workload, folded_negs)
            for base in removed:
                base_workload -= base
            if added_events:
                del events[-added_events:]
            if vec is not None:
                metview[vec[1]] = 0
            else:
                for index in added_idx:
                    met[mg_port[index]] = 0

        root_node = meet_tree.get(root)
        if root_node is None:
            root_node = [None, {}, {}, node_fp(None, root)]
            meet_tree[root] = root_node
        visit(root, root_node, None, 0, 0.0, 0.0, 0.0, n_root)

    @staticmethod
    def _maximize_fast(
        base_workload: float,
        events: List[Tuple[float, float]],
        constant: float,
    ) -> Tuple[float, float, float, int]:
        """:meth:`_maximize` with a proven dominance prune.

        The scan consumes the sorted events exactly like the reference
        (same grouping, same ``+=`` order), so at every group boundary
        its ``workload`` float equals the reference's bit for bit.  At
        each boundary it additionally knows the total mass ``S`` of the
        unconsumed events: for any later candidate ``t' >= t_next`` the
        reference can compute at most

            ``value' <= workload + S + constant - t_next + slack``

        where ``slack`` bounds the accumulated floating-point error of
        both scans (see docs/PERFORMANCE.md for the derivation).  Once
        that ceiling cannot clear the incumbent's update threshold
        ``best + _EPS``, no later candidate can win and the scan stops.
        The returned ``(value, t, workload)`` triple is therefore
        bit-identical to the reference; only ``n_candidates`` — the
        number of candidates actually evaluated — may be smaller.
        """
        best_value = base_workload + constant
        best_t = 0.0
        best_workload = base_workload
        n_candidates = 1
        if not events:
            return best_value, best_t, best_workload, n_candidates

        ordered = sorted(events)
        n = len(ordered)
        # suffix event mass: remaining[i] = sum of C over ordered[i:]
        remaining = [0.0] * n
        acc = 0.0
        for index in range(n - 1, -1, -1):
            # repro-lint: allow[REPRO102] pruning ceiling only; rounding absorbed by `slack`, never a bound value
            acc += ordered[index][1]
            remaining[index] = acc
        # slack: 4 (n + 4) u M with u = 2^-53 and M a magnitude bound
        # on every partial result of either scan — conservative by more
        # than 2x against the standard sequential-summation error bound
        magnitude = base_workload + acc + abs(constant) + ordered[-1][0]
        slack = (4.0 * (n + 4)) * 2.0 ** -53 * magnitude

        workload = base_workload
        idx = 0
        while idx < n:
            t = ordered[idx][0]
            if (
                workload + remaining[idx] + constant - t + slack
                <= best_value + _EPS
            ):
                break  # every later candidate is dominated
            while idx < n and ordered[idx][0] <= t + _EPS:
                workload += ordered[idx][1]
                idx += 1
            n_candidates += 1
            value = workload + constant - t
            if value > best_value + _EPS:
                best_value = value
                best_t = t
                best_workload = workload
        return best_value, best_t, best_workload, n_candidates


def analyze_trajectory(
    network: Network,
    serialization=True,
    refine_smax: bool = True,
    max_refinements: int = 8,
    collect_stats: bool = False,
    progress=None,
    incremental: bool = False,
    cache=None,
    explain: bool = False,
    kernel: Optional[str] = None,
) -> TrajectoryResult:
    """One-shot convenience wrapper around :class:`TrajectoryAnalyzer`."""
    return TrajectoryAnalyzer(
        network,
        serialization=serialization,
        refine_smax=refine_smax,
        max_refinements=max_refinements,
        collect_stats=collect_stats,
        progress=progress,
        incremental=incremental,
        cache=cache,
        explain=explain,
        kernel=kernel,
    ).analyze()
