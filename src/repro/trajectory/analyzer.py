"""The Trajectory-approach analyzer.

For every Virtual-Link path the analyzer maximizes, over the candidate
release instants ``t`` of the source-port busy period, the latest
completion time of the studied packet at its last port:

    ``R_i(t) = sum_j N_j(t) C_j  +  sum_k Delta_k  +  sum_k L_k
               - serialization_gain - t``

where ``N_j`` counts the frames of every flow sharing at least one port
with the path (each flow counted once, at its first meeting port,
offset by ``A_ij = Smax_j - Smin_i``), ``Delta_k`` is the
"frame counted twice" bound at each port transition (the largest frame
crossing the port — the paper's Sec. III-B-1 pessimism source), and
``L_k`` the technological latencies.

``Smax`` is refined by a sound descending fixed point: it is seeded
from the Network Calculus per-port bounds (valid upper bounds) and
tightened with trajectory prefix bounds until stable, so the analysis
is sound after *any* number of sweeps.

Implementation note: each sweep walks every VL's multicast tree once,
maintaining the competitor set, the base workload and the candidate
jump events incrementally (with rollback on backtrack), so the cost per
tree port is proportional to the *new* competitors met there rather
than to the whole competitor set — this is what keeps the ~1000-VL
industrial configuration tractable in seconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.trajectory.busy_period import busy_period_bound, interference_count
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult
from repro.trajectory.serialization import normalize_mode
from repro.trajectory.timing import (
    FlowPortKey,
    compute_smin,
    seed_smax_from_netcalc,
    tree_prefixes,
)

__all__ = ["TrajectoryAnalyzer", "analyze_trajectory"]

_LOG = get_logger("trajectory")

_EPS = 1e-6


class TrajectoryAnalyzer:
    """Computes Trajectory end-to-end delay bounds for every VL path.

    Parameters
    ----------
    network:
        The configuration to analyze (not mutated).
    serialization:
        Input-link serialization credit (the "enhanced trajectory
        approach" of the paper's Fig. 4).  ``True`` / ``"windowed"``
        applies one credit per port (the reconstruction matching the
        published evaluation); ``"paper"`` applies the literal
        per-group credit (known to be optimistic in corner cases — see
        :mod:`repro.trajectory.serialization`); ``False`` / ``"safe"``
        runs the provably sound plain analysis.
    refine_smax:
        Tighten the ``Smax`` arrival-jitter terms with trajectory
        prefix bounds (default True).  When False the Network Calculus
        seed is used as-is (single sweep) — the ablation of
        ``benchmarks/bench_ablation_fixpoint.py``.
    max_refinements:
        Upper bound on fixed-point sweeps.
    collect_stats:
        Record per-phase spans, counters and the sweep-convergence
        trace (:mod:`repro.obs`) and attach them to the result's
        ``stats`` field.  Off by default: the uninstrumented run is
        bit-identical to the pre-observability analyzer.
    progress:
        Optional ``callable(phase, done, total)`` invoked as each
        sweep walks the VL population.
    """

    def __init__(
        self,
        network: Network,
        serialization=True,
        refine_smax: bool = True,
        max_refinements: int = 8,
        collect_stats: bool = False,
        progress=None,
    ):
        if max_refinements < 1:
            raise ValueError(f"max_refinements must be >= 1, got {max_refinements}")
        self.network = network
        self.serialization_mode = normalize_mode(serialization)
        self.refine_smax = refine_smax
        self.max_refinements = max_refinements
        self._obs = Instrumentation.create(collect_stats, progress)
        self._result: Optional[TrajectoryResult] = None

    # ------------------------------------------------------------------

    def analyze(self) -> TrajectoryResult:
        """Run the analysis and return (and cache) the result."""
        if self._result is not None:
            return self._result
        network = self.network
        obs = self._obs
        collect = obs.enabled
        with obs.tracer.span("trajectory.validate"):
            check_network(network)
            topological_port_order(network)  # raises CyclicRoutingError if cyclic

        with obs.tracer.span("trajectory.nc_seed"):
            nc_seed = analyze_network_calculus(network, grouping=True)
        with obs.tracer.span("trajectory.precompute"):
            self._smin = compute_smin(network)
            self._smax: Dict[FlowPortKey, float] = seed_smax_from_netcalc(
                network, nc_seed
            )
            self._prefixes = tree_prefixes(network)
            self._precompute_structure()

        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        sweeps = 0
        sweep_trace: List[Dict[str, object]] = []
        for _ in range(self.max_refinements):
            with obs.tracer.span("trajectory.sweep", sweep=sweeps + 1) as span:
                bounds = self._sweep()
                sweeps += 1
                stable = True
                smax_updates = 0
                max_delta = 0.0
                if self.refine_smax:
                    smax_updates, max_delta = self._tighten_smax(bounds)
                    stable = smax_updates == 0
                if collect:
                    span.attrs.update(smax_updates=smax_updates)
                    sweep_trace.append(
                        {
                            "sweep": sweeps,
                            "smax_updates": smax_updates,
                            "max_delta_us": round(max_delta, 6),
                        }
                    )
                _LOG.debug(
                    "sweep done %s",
                    kv(sweep=sweeps, smax_updates=smax_updates, max_delta_us=max_delta),
                )
            if stable:
                break

        result = TrajectoryResult(
            serialization=self.serialization_mode, refinement_iterations=sweeps
        )
        for vl_name, path_index, node_path in network.flow_paths():
            last_port = (node_path[-2], node_path[-1])
            detail = bounds[(vl_name, last_port)]
            result.paths[(vl_name, path_index)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                port_ids=tuple((a, b) for a, b in zip(node_path, node_path[1:])),
                total_us=detail.total_us,
                critical_instant_us=detail.critical_instant_us,
                busy_period_us=detail.busy_period_us,
                workload_us=detail.workload_us,
                transition_us=detail.transition_us,
                latency_us=detail.latency_us,
                serialization_gain_us=detail.serialization_gain_us,
                n_competitors=detail.n_competitors,
                n_candidates=detail.n_candidates,
            )
        if collect:
            obs.metrics.counter("trajectory.sweeps", sweeps)
            obs.metrics.counter("trajectory.tree_ports_visited", sweeps * len(bounds))
            obs.metrics.counter(
                "trajectory.competitors_met", sum(b.n_competitors for b in bounds.values())
            )
            obs.metrics.counter(
                "trajectory.candidates_evaluated",
                sum(b.n_candidates for b in bounds.values()),
            )
            obs.metrics.counter("trajectory.paths_bound", len(result.paths))
            stats = obs.export()
            stats["sweeps"] = sweep_trace
            result.stats = stats
        _LOG.debug(
            "trajectory done %s",
            kv(
                sweeps=sweeps,
                paths=len(result.paths),
                serialization=self.serialization_mode,
            ),
        )
        self._result = result
        return result

    # ------------------------------------------------------------------
    # Structural precomputation (sweep-invariant)
    # ------------------------------------------------------------------

    def _precompute_structure(self) -> None:
        network = self.network
        # largest frame transmission time crossing each port (Delta term)
        self._port_max_c: Dict[PortId, float] = {}
        self._port_rate: Dict[PortId, float] = {}
        for pid in network.used_ports():
            rate = network.link_rate(*pid)
            self._port_rate[pid] = rate
            self._port_max_c[pid] = max(
                network.vl(v).s_max_bits / rate for v in network.vls_at_port(pid)
            )
        # per-VL multicast tree: root port and children adjacency
        self._trees: Dict[str, Tuple[PortId, Dict[PortId, List[PortId]]]] = {}
        for vl_name in network.virtual_links:
            children: Dict[PortId, List[PortId]] = {}
            root: Optional[PortId] = None
            for path in network.vl(vl_name).paths:
                ports = [(a, b) for a, b in zip(path, path[1:])]
                root = ports[0]
                for parent, child in zip(ports, ports[1:]):
                    siblings = children.setdefault(parent, [])
                    if child not in siblings:
                        siblings.append(child)
            assert root is not None
            self._trees[vl_name] = (root, children)
        # upstream port of each VL at each of its tree ports
        self._upstream: Dict[FlowPortKey, Optional[PortId]] = {
            key: network.upstream_port(key[0], key[1]) for key in self._prefixes
        }

    # ------------------------------------------------------------------
    # One fixed-point sweep
    # ------------------------------------------------------------------

    def _tighten_smax(
        self, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> Tuple[int, float]:
        """One descending update of Smax.

        Returns ``(number of entries tightened, largest tightening in
        us)`` — ``(0, 0.0)`` means the fixed point is stable.

        A frame of ``v`` arrives in the queue of port ``p_k`` at most
        ``R_v(prefix through p_{k-1}) + latency(p_k owner)`` after its
        release; taking the min with the previous value keeps the map a
        sound upper bound throughout.
        """
        changed = 0
        max_delta = 0.0
        for (vl_name, pid), prefix in self._prefixes.items():
            if len(prefix) < 2:
                continue
            upstream = prefix[-2]
            candidate = (
                bounds[(vl_name, upstream)].total_us
                + self.network.node(pid[0]).technological_latency_us
            )
            delta = self._smax[(vl_name, pid)] - candidate
            if delta > _EPS:
                self._smax[(vl_name, pid)] = candidate
                changed += 1
                if delta > max_delta:
                    max_delta = delta
        return changed, max_delta

    def _sweep(self) -> Dict[FlowPortKey, TrajectoryPathBound]:
        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        progress = self._obs.progress
        vls = self.network.virtual_links
        for index, vl_name in enumerate(vls):
            if progress:
                progress.update("trajectory.sweep", index, len(vls))
            self._walk_tree(vl_name, bounds)
        if progress:
            progress.update("trajectory.sweep", len(vls), len(vls))
        return bounds

    def _walk_tree(
        self, vl_name: str, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> None:
        """DFS one VL's tree, maintaining the interference state.

        State carried down the recursion (and rolled back on return):

        * ``competitors`` — ``{name: (C, T, A)}`` for every flow met so
          far (the studied flow included, with ``A = 0``);
        * ``base_workload`` — ``sum_j N_j(0) C_j`` over that set;
        * ``events`` — candidate jump instants ``(t, C)`` inside the
          source busy period;
        * per-port serialization groups for the gain bookkeeping.
        """
        network = self.network
        vl = network.vl(vl_name)
        root, children = self._trees[vl_name]
        smin_i = self._smin
        smax = self._smax
        mode = self.serialization_mode

        own_c = vl.s_max_bits / self._port_rate[root]
        competitors: Dict[str, Tuple[float, float, float]] = {
            vl_name: (own_c, vl.bag_us, 0.0)
        }

        # ---- root-level quantities -----------------------------------
        root_added: List[str] = []
        for other in network.vls_at_port(root):
            if other == vl_name:
                continue
            other_vl = network.vl(other)
            c = other_vl.s_max_bits / self._port_rate[root]
            offset = smax[(other, root)] - smin_i[(vl_name, root)]
            competitors[other] = (c, other_vl.bag_us, offset)
            root_added.append(other)

        horizon = busy_period_bound(
            [competitors[name] for name in network.vls_at_port(root)]
        )

        base_workload = 0.0
        events: List[Tuple[float, float]] = []

        def add_flow(entry: Tuple[float, float, float]) -> int:
            """Fold one flow into the workload state; return #events added."""
            nonlocal base_workload
            c, period, offset = entry
            base_workload += interference_count(0.0, offset, period) * c
            added = 0
            k = int((offset // period) + 1)
            while True:
                t = k * period - offset
                if t >= horizon:
                    break
                if t > _EPS:
                    events.append((t, c))
                    added += 1
                k += 1
            return added

        add_flow(competitors[vl_name])
        for name in root_added:
            add_flow(competitors[name])

        # ---- recursive descent ---------------------------------------
        def visit(
            port: PortId,
            depth: int,
            transitions: float,
            latencies: float,
            gain: float,
        ) -> None:
            nonlocal base_workload
            latencies += network.node(port[0]).technological_latency_us
            if depth > 0:
                transitions += self._port_max_c[port]

            added: List[str] = []
            added_events = 0
            if depth > 0:
                rate = self._port_rate[port]
                for other in network.vls_at_port(port):
                    if other in competitors:
                        continue
                    other_vl = network.vl(other)
                    entry = (
                        other_vl.s_max_bits / rate,
                        other_vl.bag_us,
                        smax[(other, port)] - smin_i[(vl_name, port)],
                    )
                    competitors[other] = entry
                    added.append(other)
                    added_events += add_flow(entry)

            port_gain = 0.0
            if mode != "safe" and added:
                groups: Dict[PortId, List[float]] = {}
                for other in added:
                    upstream = self._upstream[(other, port)]
                    if upstream is None:
                        continue
                    groups.setdefault(upstream, []).append(competitors[other][0])
                spans = [
                    sum(members) - max(members)
                    for members in groups.values()
                    if len(members) >= 2
                ]
                if spans:
                    port_gain = sum(spans) if mode == "paper" else max(spans)
            gain += port_gain

            constant = transitions + latencies - gain
            best, best_t, best_w, n_cand = self._maximize(
                base_workload, events, constant
            )
            bounds[(vl_name, port)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=-1,  # prefix record; path index filled by analyze()
                node_path=(),
                port_ids=(port,),
                total_us=best,
                critical_instant_us=best_t,
                busy_period_us=horizon,
                workload_us=best_w,
                transition_us=transitions,
                latency_us=latencies,
                serialization_gain_us=gain,
                n_competitors=len(competitors) - 1,
                n_candidates=n_cand,
            )

            for child in children.get(port, ()):
                visit(child, depth + 1, transitions, latencies, gain)

            # rollback this port's additions
            for other in added:
                c, period, offset = competitors.pop(other)
                base_workload -= interference_count(0.0, offset, period) * c
            if added_events:
                del events[-added_events:]

        visit(root, 0, 0.0, 0.0, 0.0)

    @staticmethod
    def _maximize(
        base_workload: float,
        events: List[Tuple[float, float]],
        constant: float,
    ) -> Tuple[float, float, float, int]:
        """Maximize ``W(t) + constant - t`` over the candidate instants.

        ``W(0) = base_workload``; each event ``(t, C)`` raises the
        workload by ``C`` at instant ``t``.  Between events the
        objective strictly decreases, so only ``t = 0`` and the event
        instants need evaluation.  Returns ``(best value, argmax t,
        workload at argmax, number of candidates)``.
        """
        best_value = base_workload + constant
        best_t = 0.0
        best_workload = base_workload
        n_candidates = 1
        if not events:
            return best_value, best_t, best_workload, n_candidates

        workload = base_workload
        idx = 0
        ordered = sorted(events)
        while idx < len(ordered):
            t = ordered[idx][0]
            while idx < len(ordered) and ordered[idx][0] <= t + _EPS:
                workload += ordered[idx][1]
                idx += 1
            n_candidates += 1
            value = workload + constant - t
            if value > best_value + _EPS:
                best_value = value
                best_t = t
                best_workload = workload
        return best_value, best_t, best_workload, n_candidates


def analyze_trajectory(
    network: Network,
    serialization=True,
    refine_smax: bool = True,
    max_refinements: int = 8,
    collect_stats: bool = False,
    progress=None,
) -> TrajectoryResult:
    """One-shot convenience wrapper around :class:`TrajectoryAnalyzer`."""
    return TrajectoryAnalyzer(
        network,
        serialization=serialization,
        refine_smax=refine_smax,
        max_refinements=max_refinements,
        collect_stats=collect_stats,
        progress=progress,
    ).analyze()
