"""The Trajectory-approach analyzer.

For every Virtual-Link path the analyzer maximizes, over the candidate
release instants ``t`` of the source-port busy period, the latest
completion time of the studied packet at its last port:

    ``R_i(t) = sum_j N_j(t) C_j  +  sum_k Delta_k  +  sum_k L_k
               - serialization_gain - t``

where ``N_j`` counts the frames of every flow sharing at least one port
with the path (each flow counted once, at its first meeting port,
offset by ``A_ij = Smax_j - Smin_i``), ``Delta_k`` is the
"frame counted twice" bound at each port transition (the largest frame
crossing the port — the paper's Sec. III-B-1 pessimism source), and
``L_k`` the technological latencies.

``Smax`` is refined by a sound descending fixed point: it is seeded
from the Network Calculus per-port bounds (valid upper bounds) and
tightened with trajectory prefix bounds until stable, so the analysis
is sound after *any* number of sweeps.

In ``"safe"`` mode the competitor counter additionally applies the
**catch-up correction**: the historical Martin & Minet alignment
``A_ij = Smax_j(f) - Smin_i(f)`` misses frames of a competitor released
*after* the studied packet that still reach the first shared queue
before it — feasible whenever the studied flow's longest transit to the
meeting port exceeds the competitor's shortest one (long prefixes
meeting short feeders, the ``random_network(589)`` soundness violation).
Safe mode therefore uses ``A_ij = max(Smax_j(f) - Smin_i(f),
Smax_i(f) - Smin_j(f))``, which covers both the delayed-competitor and
the delayed-studied-packet alignments.  The reproduction modes
(``"paper"`` / ``"windowed"``) keep the historical counter.

Implementation note: each sweep walks every VL's multicast tree once,
maintaining the competitor set, the base workload and the candidate
jump events incrementally (with rollback on backtrack), so the cost per
tree port is proportional to the *new* competitors met there rather
than to the whole competitor set — this is what keeps the ~1000-VL
industrial configuration tractable in seconds.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Tuple

from repro.netcalc.analyzer import analyze_network_calculus
from repro.network.port import PortId
from repro.network.port_graph import topological_port_order
from repro.network.topology import Network
from repro.network.validation import check_network
from repro.obs.costmodel import CostLedger, record_trajectory_sweep
from repro.obs.instrument import Instrumentation
from repro.obs.logging import get_logger, kv
from repro.trajectory.busy_period import busy_period_bound, interference_count
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult
from repro.trajectory.serialization import normalize_mode
from repro.trajectory.timing import (
    FlowPortKey,
    compute_smin,
    seed_smax_from_netcalc,
    tree_prefixes,
)

__all__ = ["TrajectoryAnalyzer", "analyze_trajectory"]

_LOG = get_logger("trajectory")

_EPS = 1e-6


def _flow_events(
    c: float, period: float, offset: float, horizon: float
) -> Tuple[float, Tuple[Tuple[float, float], ...]]:
    """One flow's base workload and candidate jump events ``(t, C)``.

    Pure in its four floats, which is what makes the per-sweep
    event memo in :meth:`TrajectoryAnalyzer._walk_tree` exact: the same
    ``(C, T, A, horizon)`` always reproduces the same event tuple.
    """
    base = interference_count(0.0, offset, period) * c
    flow_events = []
    k = int((offset // period) + 1)
    while True:
        t = k * period - offset
        if t >= horizon:
            break
        if t > _EPS:
            flow_events.append((t, c))
        k += 1
    return base, tuple(flow_events)


class TrajectoryAnalyzer:
    """Computes Trajectory end-to-end delay bounds for every VL path.

    Parameters
    ----------
    network:
        The configuration to analyze (not mutated).
    serialization:
        Input-link serialization credit (the "enhanced trajectory
        approach" of the paper's Fig. 4).  ``True`` / ``"windowed"``
        applies one credit per port (the reconstruction matching the
        published evaluation); ``"paper"`` applies the literal
        per-group credit (known to be optimistic in corner cases — see
        :mod:`repro.trajectory.serialization`); ``False`` / ``"safe"``
        runs the provably sound plain analysis.
    refine_smax:
        Tighten the ``Smax`` arrival-jitter terms with trajectory
        prefix bounds (default True).  When False the Network Calculus
        seed is used as-is (single sweep) — the ablation of
        ``benchmarks/bench_ablation_fixpoint.py``.
    max_refinements:
        Upper bound on fixed-point sweeps.
    collect_stats:
        Record per-phase spans, counters and the sweep-convergence
        trace (:mod:`repro.obs`) and attach them to the result's
        ``stats`` field.  Off by default: the uninstrumented run is
        bit-identical to the pre-observability analyzer.
    progress:
        Optional ``callable(phase, done, total)`` invoked as each
        sweep walks the VL population.
    incremental:
        Serve per-VL tree walks from a content-addressed
        :class:`~repro.incremental.cache.BoundCache`.  The fixed point
        is *replayed* — the same sweep/tighten sequence as a cold run,
        so every intermediate ``Smax`` map stays a sound upper bound
        and the final bounds are bit-identical — but each walk whose
        inputs (tree structure, competitor contracts and the exact
        ``Smax`` slice it reads) are unchanged is a cache hit.  On an
        edited configuration only the VLs crossing the dirty closure
        ever miss; see :mod:`repro.incremental.delta`.
    cache:
        The cache to use when ``incremental``; defaults to the
        process-wide cache.  Passing a cache implies
        ``incremental=True``.
    explain:
        Attach per-path bound provenance ledgers
        (:func:`repro.explain.trajectory.trajectory_provenance`) to the
        result.  The bounds themselves are bit-identical either way;
        the only recording cost is one ``Smax`` snapshot per sweep.
        Under ``incremental`` the whole-result cache shortcut is
        skipped — provenance needs the final sweep's live state, so it
        is always recomputed, never served stale (per-walk and per-port
        caches still apply).
    """

    def __init__(
        self,
        network: Network,
        serialization=True,
        refine_smax: bool = True,
        max_refinements: int = 8,
        collect_stats: bool = False,
        progress=None,
        incremental: bool = False,
        cache=None,
        explain: bool = False,
    ):
        if max_refinements < 1:
            raise ValueError(f"max_refinements must be >= 1, got {max_refinements}")
        self.network = network
        self.serialization_mode = normalize_mode(serialization)
        self.refine_smax = refine_smax
        self.max_refinements = max_refinements
        self.incremental = incremental or cache is not None
        self.explain = explain
        self._cache = cache
        self._walk_cache = None
        self._obs = Instrumentation.create(collect_stats, progress)
        self._result: Optional[TrajectoryResult] = None
        self._prepared = False
        self._event_memo_enabled = True  # test hook: equivalence guard
        # explain=True recording: the Smax map the final sweep ran with
        # and that sweep's complete prefix-bound dictionary
        self._explain_smax: Optional[Dict[FlowPortKey, float]] = None
        self._explain_bounds: Optional[Dict[FlowPortKey, TrajectoryPathBound]] = None

    # ------------------------------------------------------------------

    def prepare(self, smax_seed: Optional[Dict[FlowPortKey, float]] = None) -> None:
        """Validate, seed ``Smax`` and precompute sweep-invariant state.

        ``smax_seed`` replaces the Network Calculus seeding — the batch
        engine computes the seed once on the coordinator and ships it to
        every worker instead of re-running the NC analysis per process.
        Idempotent: the first call wins.
        """
        if self._prepared:
            return
        network = self.network
        obs = self._obs
        with obs.tracer.span("trajectory.validate"):
            check_network(network)
            topological_port_order(network)  # raises CyclicRoutingError if cyclic

        if smax_seed is None:
            with obs.tracer.span("trajectory.nc_seed"):
                nc_seed = analyze_network_calculus(
                    network,
                    grouping=True,
                    incremental=self.incremental,
                    cache=self._cache,
                )
            smax_seed = seed_smax_from_netcalc(network, nc_seed)
        with obs.tracer.span("trajectory.precompute"):
            self._smin = compute_smin(network)
            self._smax: Dict[FlowPortKey, float] = dict(smax_seed)
            self._prefixes = tree_prefixes(network)
            self._precompute_structure()
        if self.incremental:
            # imported lazily: repro.incremental depends on this module
            from repro.incremental.cache import default_cache

            self._walk_cache = (
                self._cache if self._cache is not None else default_cache()
            )
            with obs.tracer.span("trajectory.walk_fingerprints"):
                self._prepare_walk_fingerprints()
        self._prepared = True

    def result_fingerprint(self) -> str:
        """Digest of the whole analysis' inputs (network + parameters)."""
        from repro.incremental.fingerprint import network_fingerprint, stable_digest

        return stable_digest(
            "trajresult",
            network_fingerprint(self.network),
            self.serialization_mode,
            self.refine_smax,
            self.max_refinements,
        )

    def analyze(self) -> TrajectoryResult:
        """Run the analysis and return (and cache) the result."""
        if self._result is not None:
            return self._result
        network = self.network
        obs = self._obs
        collect = obs.enabled

        # Whole-result reuse: only when this call would do the default
        # NC seeding itself (a custom prepare(smax_seed) is not covered
        # by the fingerprint) and no provenance is wanted (the replay
        # needs the final sweep's live state).
        result_cache = result_fp = None
        if self.incremental and not self._prepared and not self.explain:
            from repro.incremental.cache import default_cache

            result_cache = self._cache if self._cache is not None else default_cache()
            with obs.tracer.span("trajectory.result_probe"):
                result_fp = self.result_fingerprint()
                cached = result_cache.get("traj.result", result_fp)
            if cached is not None:
                result = TrajectoryResult(
                    serialization=cached.serialization,
                    refinement_iterations=cached.refinement_iterations,
                    paths=dict(cached.paths),
                )
                if collect:
                    obs.metrics.counter("trajectory.result_cache_hit", 1)
                    # the deterministic ledger sections travel with the
                    # cached result; the hit itself is recorded as an
                    # explicit cache entry, never silently absent
                    cached_cost = result_cache.get("traj.cost", result_fp)
                    ledger = (
                        cached_cost.snapshot()
                        if isinstance(cached_cost, CostLedger)
                        else CostLedger("trajectory")
                    )
                    ledger.record_cache("result", 1, 0)
                    stats = obs.export()
                    stats["cost"] = ledger.to_dict()
                    result.stats = stats
                _LOG.debug(
                    "trajectory result cache hit %s", kv(paths=len(result.paths))
                )
                self._result = result
                return result

        self.prepare()

        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        sweeps = 0
        sweep_trace: List[Dict[str, object]] = []
        # integer sums over the sweep's own bounds: cheap, and computed
        # whenever either a stats consumer or the result cache needs it
        # (a cold stats-off run must still persist the ledger so a warm
        # stats-on run reads identical deterministic sections)
        ledger = (
            CostLedger("trajectory")
            if collect or result_cache is not None
            else None
        )
        for _ in range(self.max_refinements):
            with obs.tracer.span("trajectory.sweep", sweep=sweeps + 1) as span:
                if self.explain:
                    # the last snapshot taken is the map the final
                    # sweep ran with — what the provenance replay reads
                    self._explain_smax = dict(self._smax)
                bounds = self._sweep()
                sweeps += 1
                stable = True
                smax_updates: Dict[FlowPortKey, float] = {}
                max_delta = 0.0
                if self.refine_smax:
                    smax_updates, max_delta = self.tighten_smax(bounds)
                    stable = not smax_updates
                if ledger is not None:
                    record_trajectory_sweep(
                        ledger, bounds, smax_updates=len(smax_updates)
                    )
                if collect:
                    span.attrs.update(smax_updates=len(smax_updates))
                    sweep_trace.append(
                        {
                            "sweep": sweeps,
                            "smax_updates": len(smax_updates),
                            "max_delta_us": round(max_delta, 6),
                        }
                    )
                _LOG.debug(
                    "sweep done %s",
                    kv(
                        sweep=sweeps,
                        smax_updates=len(smax_updates),
                        max_delta_us=max_delta,
                    ),
                )
            if stable:
                break

        result = self.build_result(bounds, sweeps)
        if ledger is not None:
            ledger.add_work("paths_bound", len(result.paths))
        if self.explain:
            self._explain_bounds = bounds
            with obs.tracer.span("trajectory.explain"):
                self._attach_provenance(result)
        if result_cache is not None and result_fp is not None:
            result_cache.put(
                "traj.result",
                result_fp,
                TrajectoryResult(
                    serialization=result.serialization,
                    refinement_iterations=result.refinement_iterations,
                    paths=dict(result.paths),
                ),
            )
            # snapshot: deterministic sections only, so a warm hit can
            # reconstruct them byte-identically while recording its own
            # cache tallies
            result_cache.put("traj.cost", result_fp, ledger.snapshot())
        if ledger is not None:
            for name, (hits, misses) in sorted(self.cache_stats().items()):
                ledger.record_cache(name, hits, misses)
            if result_cache is not None:
                ledger.record_cache("result", 0, 1)
        if collect:
            obs.metrics.counter("trajectory.sweeps", sweeps)
            obs.metrics.counter("trajectory.tree_ports_visited", sweeps * len(bounds))
            obs.metrics.counter(
                "trajectory.competitors_met",
                # repro-lint: allow[REPRO101] integer competitor counts; exact in floats
                sum(b.n_competitors for b in bounds.values()),
            )
            obs.metrics.counter(
                "trajectory.candidates_evaluated",
                # repro-lint: allow[REPRO101] integer candidate counts; exact in floats
                sum(b.n_candidates for b in bounds.values()),
            )
            obs.metrics.counter("trajectory.paths_bound", len(result.paths))
            for name, (hits, misses) in sorted(self.cache_stats().items()):
                obs.metrics.counter(f"trajectory.{name}_cache_hits", hits)
                obs.metrics.counter(f"trajectory.{name}_cache_misses", misses)
            stats = obs.export()
            stats["sweeps"] = sweep_trace
            stats["cost"] = ledger.to_dict()
            result.stats = stats
        _LOG.debug(
            "trajectory done %s",
            kv(
                sweeps=sweeps,
                paths=len(result.paths),
                serialization=self.serialization_mode,
            ),
        )
        self._result = result
        return result

    def _attach_provenance(self, result: TrajectoryResult) -> None:
        """Replay the final sweep and attach the per-path ledgers.

        Lazy import: the explain layer costs nothing unless requested.
        Requires ``_explain_smax`` / ``_explain_bounds`` to be set
        (done by :meth:`analyze`, or by the batch coordinator).
        """
        from repro.explain.trajectory import trajectory_provenance

        result.provenance = trajectory_provenance(self, result)

    def build_result(
        self, bounds: Dict[FlowPortKey, TrajectoryPathBound], sweeps: int
    ) -> TrajectoryResult:
        """Per-path result from one converged sweep's prefix bounds.

        Shared by :meth:`analyze` and the batch coordinator (which runs
        the sweeps remotely and only merges prefix bounds locally).
        """
        result = TrajectoryResult(
            serialization=self.serialization_mode, refinement_iterations=sweeps
        )
        for vl_name, path_index, node_path in self.network.flow_paths():
            last_port = (node_path[-2], node_path[-1])
            detail = bounds[(vl_name, last_port)]
            result.paths[(vl_name, path_index)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=path_index,
                node_path=tuple(node_path),
                port_ids=tuple((a, b) for a, b in zip(node_path, node_path[1:])),
                total_us=detail.total_us,
                critical_instant_us=detail.critical_instant_us,
                busy_period_us=detail.busy_period_us,
                workload_us=detail.workload_us,
                transition_us=detail.transition_us,
                latency_us=detail.latency_us,
                serialization_gain_us=detail.serialization_gain_us,
                n_competitors=detail.n_competitors,
                n_candidates=detail.n_candidates,
            )
        return result

    # ------------------------------------------------------------------
    # Structural precomputation (sweep-invariant)
    # ------------------------------------------------------------------

    def _precompute_structure(self) -> None:
        network = self.network
        # sorted flow tuple per port: a deterministic iteration order
        # regardless of process hash seed (frozenset order is not)
        self._port_vls: Dict[PortId, Tuple[str, ...]] = {
            pid: tuple(sorted(network.vls_at_port(pid)))
            for pid in network.used_ports()
        }
        # largest frame transmission time crossing each port (Delta term)
        self._port_max_c: Dict[PortId, float] = {}
        self._port_rate: Dict[PortId, float] = {}
        for pid, members in self._port_vls.items():
            rate = network.link_rate(*pid)
            self._port_rate[pid] = rate
            self._port_max_c[pid] = max(
                network.vl(v).s_max_bits / rate for v in members
            )
        # per-VL multicast tree: root port and children adjacency
        self._trees: Dict[str, Tuple[PortId, Dict[PortId, List[PortId]]]] = {}
        for vl_name in network.virtual_links:
            children: Dict[PortId, List[PortId]] = {}
            root: Optional[PortId] = None
            for path in network.vl(vl_name).paths:
                ports = [(a, b) for a, b in zip(path, path[1:])]
                root = ports[0]
                for parent, child in zip(ports, ports[1:]):
                    siblings = children.setdefault(parent, [])
                    if child not in siblings:
                        siblings.append(child)
            assert root is not None
            self._trees[vl_name] = (root, children)
        # upstream port of each VL at each of its tree ports
        self._upstream: Dict[FlowPortKey, Optional[PortId]] = {
            key: network.upstream_port(key[0], key[1]) for key in self._prefixes
        }
        # per-node memo caches (sweep- and flow-invariant quantities):
        # the source busy period only involves flows sourced at the root
        # ES port, all with zero arrival offset, so it is one number per
        # *node* shared by every VL of that port and every sweep; the
        # meeting structure (which competitors join at a port, and the
        # serialization credit they earn) is structural, so it is
        # computed on the first sweep and replayed afterwards.
        self._horizon_cache: Dict[PortId, float] = {}
        self._meeting_cache: Dict[
            FlowPortKey, Tuple[Tuple[str, ...], Tuple[str, ...], float]
        ] = {}
        # candidate-event memo: the jump instants of a competitor entry
        # depend only on (C, T, offset, horizon), and within one sweep
        # the same entry recurs at every meeting port of every studied
        # VL sharing it — cleared per sweep since offsets move between
        # sweeps (`_flow_events`).
        self._event_cache: Dict[
            Tuple[float, float, float, float], Tuple[float, Tuple[Tuple[float, float], ...]]
        ] = {}
        # per-sweep packed Smax slices, one per port (`_port_pack`) —
        # only filled when incremental, but cleared unconditionally
        self._port_packs: Dict[PortId, bytes] = {}
        self._cache_counters: Dict[str, List[int]] = {
            "horizon": [0, 0],
            "meetings": [0, 0],
            "events": [0, 0],
        }
        if self.incremental:
            self._cache_counters["walk"] = [0, 0]

    def _tree_ports(self, vl_name: str) -> List[PortId]:
        """One VL's tree ports in the DFS preorder :meth:`_walk_tree` visits."""
        root, children = self._trees[vl_name]
        out: List[PortId] = []
        stack = [root]
        while stack:
            port = stack.pop()
            out.append(port)
            stack.extend(reversed(children.get(port, ())))
        return out

    def _prepare_walk_fingerprints(self) -> None:
        """Per-VL structural digest + the ``Smax`` slice each walk reads.

        A walk of ``v`` observes: its own contract and tree; at each
        tree port the rate, largest frame, owner latency, and every
        crossing flow's contract (``C``/``T`` terms, gain groups and
        the re-meeting test all derive from contracts + routing) and
        upstream port; the ``Smin`` entries at those ports; the
        serialization mode — all sweep-invariant, folded into
        ``_walk_struct_fp`` here — plus the current ``Smax`` values of
        every member at every tree port, hashed per sweep in
        :meth:`sweep_vls`.  Together these cover every input of
        :meth:`_walk_tree` bit for bit, so equal fingerprints
        guarantee an identical walk result.

        The ``Smax`` slice is packed *per port* (``_port_pack``), not
        per VL: many VLs share a port, and packing each port's member
        slice once per sweep instead of once per sharing VL drops the
        fingerprint cost from |VLs|x|tree|x|members| float reads to
        |ports|x|members|.  Concatenating per-port packs over
        ``_walk_tree_ports`` feeds the hash exactly the same bytes in
        the same order as the flat per-VL slice did (members per port,
        ports in tree order), so the resulting digest — and therefore
        every cache address — is bit-identical to the naive packing.
        """
        from repro.incremental.fingerprint import stable_digest, vl_fingerprint

        network = self.network
        contracts = {
            name: vl_fingerprint(network.vl(name))
            for name in sorted(network.virtual_links)
        }
        self._walk_tree_ports: Dict[str, Tuple[PortId, ...]] = {}
        self._walk_struct_fp: Dict[str, bytes] = {}
        for vl_name in sorted(network.virtual_links):
            parts: List[object] = [self.serialization_mode, contracts[vl_name]]
            tree_ports = tuple(self._tree_ports(vl_name))
            for port in tree_ports:
                members = self._port_vls[port]
                parts.append(
                    (
                        port,
                        float(self._port_rate[port]),
                        float(self._port_max_c[port]),
                        float(network.node(port[0]).technological_latency_us),
                        tuple(
                            (m, contracts[m], self._upstream[(m, port)])
                            for m in members
                        ),
                        tuple(float(self._smin[(m, port)]) for m in members),
                    )
                )
            self._walk_tree_ports[vl_name] = tree_ports
            self._walk_struct_fp[vl_name] = stable_digest(
                "trajwalk", *parts
            ).encode()

    def _port_pack(self, port: PortId) -> bytes:
        """This sweep's packed ``Smax`` slice of one port's members."""
        pack = self._port_packs.get(port)
        if pack is None:
            from repro.incremental.fingerprint import pack_floats

            smax = self._smax
            pack = pack_floats([smax[(m, port)] for m in self._port_vls[port]])
            self._port_packs[port] = pack
        return pack

    def _walk_fingerprint(self, vl_name: str) -> str:
        """Digest of one walk's complete inputs under the current ``Smax``."""
        digest = hashlib.sha256(self._walk_struct_fp[vl_name])
        for port in self._walk_tree_ports[vl_name]:
            digest.update(self._port_pack(port))
        return digest.hexdigest()

    def cache_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-cache ``(hits, misses)`` of the per-node memo caches."""
        if not self._prepared:
            return {}
        return {
            name: (hits, misses)
            for name, (hits, misses) in self._cache_counters.items()
        }

    # ------------------------------------------------------------------
    # One fixed-point sweep
    # ------------------------------------------------------------------

    def smax_snapshot(self) -> Dict[FlowPortKey, float]:
        """A copy of the current ``Smax`` map (batch coordinator seed)."""
        if not self._prepared:
            raise RuntimeError("prepare() must run before smax_snapshot()")
        return dict(self._smax)

    def tighten_smax(
        self, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> Tuple[Dict[FlowPortKey, float], float]:
        """One descending update of Smax.

        Returns ``(tightened entries, largest tightening in us)`` —
        ``({}, 0.0)`` means the fixed point is stable.  The entry map is
        what the batch engine broadcasts to its workers between sweeps.

        A frame of ``v`` arrives in the queue of port ``p_k`` at most
        ``R_v(prefix through p_{k-1}) + latency(p_k owner)`` after its
        release; taking the min with the previous value keeps the map a
        sound upper bound throughout.
        """
        updates: Dict[FlowPortKey, float] = {}
        max_delta = 0.0
        for (vl_name, pid), prefix in self._prefixes.items():
            if len(prefix) < 2:
                continue
            upstream = prefix[-2]
            candidate = (
                bounds[(vl_name, upstream)].total_us
                + self.network.node(pid[0]).technological_latency_us
            )
            delta = self._smax[(vl_name, pid)] - candidate
            if delta > _EPS:
                self._smax[(vl_name, pid)] = candidate
                updates[(vl_name, pid)] = candidate
                if delta > max_delta:
                    max_delta = delta
        return updates, max_delta

    def apply_smax_updates(self, updates: Dict[FlowPortKey, float]) -> None:
        """Install coordinator-tightened ``Smax`` entries (batch workers)."""
        self._smax.update(updates)

    def _sweep(self) -> Dict[FlowPortKey, TrajectoryPathBound]:
        return self.sweep_vls(list(self.network.virtual_links))

    def sweep_vls(
        self, vl_names: List[str]
    ) -> Dict[FlowPortKey, TrajectoryPathBound]:
        """Walk the given VLs' trees once with the current ``Smax`` map.

        The prefix bounds of different VLs are independent within one
        sweep, which is what lets the batch engine fan a sweep's walks
        across worker processes and merge the per-chunk dictionaries in
        any order without changing a single bit of the result.
        """
        if not self._prepared:
            raise RuntimeError("prepare() must run before sweep_vls()")
        bounds: Dict[FlowPortKey, TrajectoryPathBound] = {}
        progress = self._obs.progress
        cache = self._walk_cache
        # candidate events shift with Smax between sweeps: stale keys
        # would only miss, so clearing merely bounds the memo's size
        self._event_cache.clear()
        # port packs, by contrast, MUST be dropped: Smax tightened
        # since the last sweep, and a stale pack would alias two
        # different walk inputs onto one fingerprint
        self._port_packs.clear()
        for index, vl_name in enumerate(vl_names):
            if progress:
                progress.update("trajectory.sweep", index, len(vl_names))
            if cache is None:
                self._walk_tree(vl_name, bounds)
                continue
            walk_counters = self._cache_counters["walk"]
            fingerprint = self._walk_fingerprint(vl_name)
            cached = cache.get("traj.walk", fingerprint)
            if cached is not None:
                walk_counters[0] += 1
                bounds.update(cached)
            else:
                walk_counters[1] += 1
                local: Dict[FlowPortKey, TrajectoryPathBound] = {}
                self._walk_tree(vl_name, local)
                cache.put("traj.walk", fingerprint, local)
                bounds.update(local)
        if progress:
            progress.update("trajectory.sweep", len(vl_names), len(vl_names))
        return bounds

    def _competitor_entry(
        self, vl_name: str, other: str, port: PortId
    ) -> Tuple[float, float, float]:
        """``(C, T, A)`` of a competitor first met (or re-met) at ``port``."""
        other_vl = self.network.vl(other)
        offset = self._smax[(other, port)] - self._smin[(vl_name, port)]
        if self.serialization_mode == "safe":
            # Catch-up correction: a frame of `other` released *after*
            # the studied packet can still reach this queue first
            # whenever the studied flow's worst transit here (Smax_i)
            # exceeds the competitor's best (Smin_j).  The historical
            # Martin & Minet alignment misses those frames when
            # Smax_i + Smin_i > Smax_j + Smin_j, which is the
            # random_network(589) soundness violation.
            offset = max(
                offset, self._smax[(vl_name, port)] - self._smin[(other, port)]
            )
        return (
            other_vl.s_max_bits / self._port_rate[port],
            other_vl.bag_us,
            offset,
        )

    def _discover_meetings(
        self,
        vl_name: str,
        port: PortId,
        competitors: Dict[str, Tuple[float, float, float]],
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], float]:
        """Which flows join the studied path at ``port``, and their credit.

        Returns ``(added, readded, serialization_gain)``.  ``added`` are
        flows met for the first time.  ``readded`` are flows already
        counted upstream that *diverged from the studied path and meet
        it again* here — possible on meshed topologies, where a
        competitor's frames can overtake the studied packet off-path and
        delay it a second time.  The Martin & Minet tree formulation
        counts every competitor exactly once (sound on trees, where a
        frame ahead in a FIFO queue stays ahead for the whole shared
        segment); ``safe`` mode charges every re-meeting as an
        *additional* fresh meeting, while the historical ``paper`` and
        ``windowed`` reproduction modes keep the counted-once treatment
        and therefore remain optimistic on such configurations.

        The serialization gain is computed from first meetings only, to
        match the historical credit exactly (it is zero in safe mode
        anyway).

        The result is structural — independent of the sweep's ``Smax``
        values — so callers memoize it per ``(VL, port)``.
        """
        parent = self._upstream[(vl_name, port)]
        added: List[str] = []
        readded: List[str] = []
        for other in self._port_vls[port]:
            if other == vl_name:
                continue
            if other not in competitors:
                added.append(other)
            elif parent is not None and (other, parent) not in self._prefixes:
                # `other` was met upstream but does not cross the port we
                # arrived from: it left the path and is rejoining here.
                readded.append(other)

        mode = self.serialization_mode
        port_gain = 0.0
        if mode != "safe" and added:
            rate = self._port_rate[port]
            groups: Dict[PortId, List[float]] = {}
            for other in added:
                upstream = self._upstream[(other, port)]
                if upstream is None:
                    continue
                groups.setdefault(upstream, []).append(
                    self.network.vl(other).s_max_bits / rate
                )
            spans = [
                math.fsum(members) - max(members)
                for members in groups.values()
                if len(members) >= 2
            ]
            if spans:
                port_gain = math.fsum(spans) if mode == "paper" else max(spans)
        return tuple(added), tuple(readded), port_gain

    def _root_horizon(self, root: PortId) -> float:
        """Source busy-period bound, memoized per root port.

        Every flow of an ES output port is sourced at that ES, so all
        arrival offsets are zero and the bound is shared by every VL of
        the port and every sweep.
        """
        hits_misses = self._cache_counters["horizon"]
        cached = self._horizon_cache.get(root)
        if cached is not None:
            hits_misses[0] += 1
            return cached
        hits_misses[1] += 1
        rate = self._port_rate[root]
        horizon = busy_period_bound(
            [
                (self.network.vl(name).s_max_bits / rate, self.network.vl(name).bag_us, 0.0)
                for name in self._port_vls[root]
            ]
        )
        self._horizon_cache[root] = horizon
        return horizon

    def _walk_tree(
        self, vl_name: str, bounds: Dict[FlowPortKey, TrajectoryPathBound]
    ) -> None:
        """DFS one VL's tree, maintaining the interference state.

        State carried down the recursion (and rolled back on return):

        * ``competitors`` — ``{name: (C, T, A)}`` for every flow met so
          far (the studied flow included, with ``A = 0``);
        * ``base_workload`` — ``sum_j N_j(0) C_j`` over that set;
        * ``events`` — candidate jump instants ``(t, C)`` inside the
          source busy period;
        * per-port serialization groups for the gain bookkeeping.
        """
        network = self.network
        vl = network.vl(vl_name)
        root, children = self._trees[vl_name]

        own_c = vl.s_max_bits / self._port_rate[root]
        competitors: Dict[object, Tuple[float, float, float]] = {
            vl_name: (own_c, vl.bag_us, 0.0)
        }
        safe = self.serialization_mode == "safe"

        # ---- root-level quantities -----------------------------------
        root_added: List[str] = []
        for other in self._port_vls[root]:
            if other == vl_name:
                continue
            competitors[other] = self._competitor_entry(vl_name, other, root)
            root_added.append(other)

        horizon = self._root_horizon(root)

        base_workload = 0.0
        events: List[Tuple[float, float]] = []
        event_cache = self._event_cache
        event_counters = self._cache_counters["events"]
        memo_enabled = self._event_memo_enabled

        def add_flow(entry: Tuple[float, float, float]) -> int:
            """Fold one flow into the workload state; return #events added."""
            nonlocal base_workload
            c, period, offset = entry
            if memo_enabled:
                key = (c, period, offset, horizon)
                cached = event_cache.get(key)
                if cached is None:
                    event_counters[1] += 1
                    cached = _flow_events(c, period, offset, horizon)
                    event_cache[key] = cached
                else:
                    event_counters[0] += 1
                base, flow_events = cached
            else:
                base, flow_events = _flow_events(c, period, offset, horizon)
            base_workload += base
            events.extend(flow_events)
            return len(flow_events)

        def remove_flow(entry: Tuple[float, float, float]) -> None:
            nonlocal base_workload
            c, period, offset = entry
            base_workload -= interference_count(0.0, offset, period) * c

        add_flow(competitors[vl_name])
        for name in root_added:
            add_flow(competitors[name])

        meeting_cache = self._meeting_cache
        meeting_counters = self._cache_counters["meetings"]

        # ---- recursive descent ---------------------------------------
        def visit(
            port: PortId,
            depth: int,
            transitions: float,
            latencies: float,
            gain: float,
            n_met: int,
        ) -> None:
            latencies += network.node(port[0]).technological_latency_us
            if depth > 0:
                transitions += self._port_max_c[port]

            added: Tuple[str, ...] = ()
            readded: Tuple[str, ...] = ()
            port_gain = 0.0
            rollback: List[object] = []
            added_events = 0
            if depth > 0:
                key = (vl_name, port)
                cached = meeting_cache.get(key)
                if cached is None:
                    meeting_counters[1] += 1
                    cached = self._discover_meetings(vl_name, port, competitors)
                    meeting_cache[key] = cached
                else:
                    meeting_counters[0] += 1
                added, readded, port_gain = cached
                for other in added:
                    entry = self._competitor_entry(vl_name, other, port)
                    competitors[other] = entry
                    rollback.append(other)
                    added_events += add_flow(entry)
                if safe:
                    # A re-met competitor's frames can overtake the
                    # studied packet on the off-path detour, so they may
                    # interfere again here.  Charge the re-meeting as an
                    # extra competitor (the first meeting's charge stays
                    # in place); synthetic keys keep the name-membership
                    # test in `_discover_meetings` intact.
                    for other in readded:
                        entry = self._competitor_entry(vl_name, other, port)
                        remeet_key = (other, port)
                        competitors[remeet_key] = entry
                        rollback.append(remeet_key)
                        added_events += add_flow(entry)
                    n_met += len(readded)
            gain += port_gain
            n_met += len(added)

            constant = transitions + latencies - gain
            best, best_t, best_w, n_cand = self._maximize(
                base_workload, events, constant
            )
            bounds[(vl_name, port)] = TrajectoryPathBound(
                vl_name=vl_name,
                path_index=-1,  # prefix record; path index filled by analyze()
                node_path=(),
                port_ids=(port,),
                total_us=best,
                critical_instant_us=best_t,
                busy_period_us=horizon,
                workload_us=best_w,
                transition_us=transitions,
                latency_us=latencies,
                serialization_gain_us=gain,
                n_competitors=n_met,
                n_candidates=n_cand,
            )

            for child in children.get(port, ()):
                visit(child, depth + 1, transitions, latencies, gain, n_met)

            # rollback this port's additions
            for entry_key in rollback:
                remove_flow(competitors.pop(entry_key))
            if added_events:
                del events[-added_events:]

        visit(root, 0, 0.0, 0.0, 0.0, len(root_added))

    @staticmethod
    def _maximize(
        base_workload: float,
        events: List[Tuple[float, float]],
        constant: float,
    ) -> Tuple[float, float, float, int]:
        """Maximize ``W(t) + constant - t`` over the candidate instants.

        ``W(0) = base_workload``; each event ``(t, C)`` raises the
        workload by ``C`` at instant ``t``.  Between events the
        objective strictly decreases, so only ``t = 0`` and the event
        instants need evaluation.  Returns ``(best value, argmax t,
        workload at argmax, number of candidates)``.
        """
        best_value = base_workload + constant
        best_t = 0.0
        best_workload = base_workload
        n_candidates = 1
        if not events:
            return best_value, best_t, best_workload, n_candidates

        workload = base_workload
        idx = 0
        ordered = sorted(events)
        while idx < len(ordered):
            t = ordered[idx][0]
            while idx < len(ordered) and ordered[idx][0] <= t + _EPS:
                workload += ordered[idx][1]
                idx += 1
            n_candidates += 1
            value = workload + constant - t
            if value > best_value + _EPS:
                best_value = value
                best_t = t
                best_workload = workload
        return best_value, best_t, best_workload, n_candidates


def analyze_trajectory(
    network: Network,
    serialization=True,
    refine_smax: bool = True,
    max_refinements: int = 8,
    collect_stats: bool = False,
    progress=None,
    incremental: bool = False,
    cache=None,
    explain: bool = False,
) -> TrajectoryResult:
    """One-shot convenience wrapper around :class:`TrajectoryAnalyzer`."""
    return TrajectoryAnalyzer(
        network,
        serialization=serialization,
        refine_smax=refine_smax,
        max_refinements=max_refinements,
        collect_stats=collect_stats,
        progress=progress,
        incremental=incremental,
        cache=cache,
        explain=explain,
    ).analyze()
