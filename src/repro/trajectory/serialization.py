"""Input-link serialization for the Trajectory approach.

Paper Sec. II-B (Figs. 3 and 4): the plain Trajectory worst case lets
every competing frame reach a port *simultaneously*, even frames that
travel over the same upstream link — a physically impossible scenario.
The paper's "enhanced trajectory approach" serializes such frames: for
a group ``G`` of competing flows that first meets the studied path at a
port and arrives there through one shared input link, the burst is
reduced by

    ``sum_{j in G} C_j - max_{j in G} C_j``

(the largest frame may still head the burst; every other one is pushed
back by at least its own transmission time on the shared link).  On the
paper's Fig. 2 example this removes exactly one 40 us frame time from
v1's bound — the Fig. 3 -> Fig. 4 improvement — and it is the credit
the DATE 2010 tool used to produce Table I.

**Known optimism.**  This reproduction found — by checking every bound
against exhaustive simulation — that the per-group credit can undershoot
the true worst case: when the studied packet is delayed at its *own*
source, a long serialized burst still fits entirely ahead of it (see
``tests/trajectory/test_serialization.py`` for the concrete violating
scenario, where the sound bound of 456 us is attained by simulation
while the credited bound claims 416 us or less).  This is consistent
with the later literature: Kemayo et al. subsequently showed the
serialization optimisation of the FIFO trajectory approach to be
optimistic in corner cases.  The library therefore exposes two modes:

* ``"paper"`` — the historical credit above, used to reproduce the
  paper's evaluation;
* ``"windowed"`` — an intermediate credit: the serialized span of a
  group must elapse inside the studied packet's busy period, but the
  spans of *different* input links overlap in time, so per port only
  the largest group's credit is taken (``max`` instead of ``sum`` over
  groups).  Much less optimistic than ``"paper"`` on ports fed by many
  links, though still not proof-grade;
* ``"safe"`` — no serialization credit (the plain Martin & Minet
  accounting), provably sound; this is what the simulation-backed
  property tests run against.

**Re-meetings (audit note).**  This module only credits *first*
meetings, which is where the whole serialization argument lives: a
group is serialized on the link it arrives through when it *joins* the
studied path.  On meshed routings a competitor can additionally leave
the studied path and rejoin it downstream; how such re-meetings are
*charged* is the analyzer's concern
(:meth:`~repro.trajectory.analyzer.TrajectoryAnalyzer._discover_meetings`):
``paper`` and ``windowed`` keep the historical counted-once treatment
(optimistic on meshes), ``safe`` charges every re-meeting as an
additional competitor.  See ``tests/trajectory/test_analyzer.py::
TestMeshReMeeting`` for the concrete divergence/rejoin topology.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Tuple

from repro.network.port import PortId
from repro.network.topology import Network

__all__ = ["SERIALIZATION_MODES", "normalize_mode", "serialization_gain"]

SERIALIZATION_MODES = ("paper", "windowed", "safe")


def normalize_mode(serialization) -> str:
    """Map the public ``serialization`` argument to a mode string.

    ``True`` means the ``"windowed"`` credit — the reconstruction that
    best matches the published evaluation at industrial scale while
    reproducing the paper's Fig. 4 example exactly (on a single group
    per port, ``"windowed"`` and ``"paper"`` coincide).  ``False`` is
    the sound plain analysis; the strings ``"paper"`` / ``"windowed"``
    / ``"safe"`` are accepted verbatim.
    """
    if serialization is True:
        return "windowed"
    if serialization is False:
        return "safe"
    if serialization in SERIALIZATION_MODES:
        return str(serialization)
    raise ValueError(
        "serialization must be True, False, 'paper', 'windowed' or 'safe', "
        f"got {serialization!r}"
    )


def serialization_gain(
    network: Network,
    prefix_ports: Tuple[PortId, ...],
    first_meeting: Mapping[str, PortId],
    transmission_time: Mapping[str, float],
    mode: str = "paper",
) -> float:
    """Workload credit from serialized same-link arrivals.

    Parameters
    ----------
    prefix_ports:
        The studied flow's (prefix) trajectory.
    first_meeting:
        For every competing VL, the first port of ``prefix_ports`` it
        shares with the studied flow.
    transmission_time:
        Worst-case transmission time ``C_j`` of every competing VL.
    mode:
        ``"paper"`` for the historical per-group credit, ``"windowed"``
        for the per-port max-group credit, ``"safe"`` for none (see
        module docstring).

    Only groups *not* sharing the studied flow's own trajectory qualify:
    frames arriving through the studied flow's own input link already
    had their interference accounted at the previous port.
    """
    if mode not in SERIALIZATION_MODES:
        raise ValueError(f"unknown serialization mode {mode!r}")
    if mode == "safe":
        return 0.0

    groups: Dict[Tuple[PortId, PortId], List[float]] = {}
    for vl_name, meet_port in first_meeting.items():
        upstream = network.upstream_port(vl_name, meet_port)
        if upstream is None:
            continue  # sourced at the port's owner: no shared link upstream
        if upstream in prefix_ports:
            continue  # shares the studied flow's own input link
        groups.setdefault((meet_port, upstream), []).append(transmission_time[vl_name])

    if mode == "paper":
        return math.fsum(
            math.fsum(members) - max(members)
            for members in groups.values()
            if len(members) >= 2
        )

    # "windowed": one credit per port — the largest group's span
    per_port: Dict[PortId, float] = {}
    for (meet_port, _upstream), members in groups.items():
        if len(members) >= 2:
            span = math.fsum(members) - max(members)
            per_port[meet_port] = max(per_port.get(meet_port, 0.0), span)
    return math.fsum(per_port.values())
