"""Trajectory-approach analysis of AFDX networks.

The Trajectory approach (Martin & Minet, IPDPS 2006) bounds the
worst-case response time of a packet by studying the busy periods it
meets along its *trajectory* — the sequence of output ports of its
path — instead of composing per-node worst cases.  Bauer, Scharbarg &
Fraboul applied it to AFDX (ETFA 2009); the DATE 2010 paper reproduced
here compares it against Network Calculus.

Highlights of the implementation (details in DESIGN.md, Sec. 3.2):

* per-flow sporadic model ``(C = s_max / R, T = BAG)``;
* workload of competing flows counted once each, offset by the
  arrival-jitter terms ``A_ij = Smax_j - Smin_i`` at the first meeting
  port, with ``Smax`` refined through a sound fixed point seeded from
  the Network Calculus per-port bounds;
* the per-transition "frame counted twice" term, upper-bounded by the
  largest frame crossing the node — the pessimism source the paper
  analyzes in Sec. III-B-1;
* optional input-link serialization (the grouping technique ported to
  the Trajectory approach), enabled by default.

Entry point: :class:`TrajectoryAnalyzer` (or
:func:`analyze_trajectory`).
"""

from repro.trajectory.analyzer import TrajectoryAnalyzer, analyze_trajectory
from repro.trajectory.results import TrajectoryPathBound, TrajectoryResult

__all__ = [
    "TrajectoryAnalyzer",
    "analyze_trajectory",
    "TrajectoryResult",
    "TrajectoryPathBound",
]
