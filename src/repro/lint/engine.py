"""Two-pass lint engine: collect project context, then apply the rules.

Pass 1 parses every file and harvests cross-file facts (functions
annotated to return sets — see :mod:`repro.lint.project`).  Pass 2
runs the rule visitor per file, applies inline waivers, and lints the
waivers themselves (REPRO301/REPRO302).

Determinism is part of the engine's own contract: files are discovered
with ``sorted(Path.rglob)``, findings are sorted by location, and the
JSON reporter serializes with sorted keys — two runs over the same
tree are byte-identical regardless of ``PYTHONHASHSEED`` (enforced by
``tests/lint/test_determinism.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectContext, collect_project_context
from repro.lint.rules import RULES_BY_ID, SUPERSEDED_BY_DATAFLOW, run_rules
from repro.lint.waivers import Waiver, parse_waivers

__all__ = ["LintResult", "lint_paths", "lint_source", "ENGINES"]

#: ``syntactic`` is the historical single-statement pattern matcher;
#: ``dataflow`` swaps REPRO103/REPRO401 for the interprocedural
#: REPRO5xx/6xx analyses of :mod:`repro.lint.dataflow`.
ENGINES = ("syntactic", "dataflow")


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` holds *all* findings, waived ones included (flagged);
    the ``errors``/``warnings`` properties count only unwaived
    findings — they drive the exit code.
    """

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    parse_failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def errors(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.WARNING)

    @property
    def waived(self) -> int:
        return sum(1 for f in self.findings if f.waived)

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": list(self.files),
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files": len(self.files),
                "findings": len(self.findings),
                "errors": self.errors,
                "warnings": self.warnings,
                "waived": self.waived,
                "parse_failures": len(self.parse_failures),
            },
        }


def _iter_python_files(paths: Sequence[str]) -> List[Tuple[str, Path]]:
    """Expand the CLI arguments into ``(display_path, file)`` pairs.

    Directories are walked recursively; displayed paths stay relative
    to the given argument so output does not depend on the absolute
    checkout location.
    """
    out: List[Tuple[str, Path]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                out.append((str(file), file))
        else:
            out.append((str(root), root))
    out.sort(key=lambda pair: pair[0])
    return out


#: Header-only compound statements: a waiver above one covers the
#: header lines, not the whole (possibly hundred-line) suite.
_COMPOUND = (
    ast.If, ast.While, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith,
    ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """``(first_line, last_line)`` of every statement's own code.

    Simple statements span ``lineno..end_lineno``; compound statements
    span only their header (up to the first body statement), so a
    waiver never silently blankets an entire suite.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, _COMPOUND):
            body = getattr(node, "body", None)
            end = body[0].lineno - 1 if body else node.lineno
        else:
            end = node.end_lineno or node.lineno
        spans.append((node.lineno, max(end, node.lineno)))
    return spans


def _attach_waiver_spans(tree: ast.Module, waivers: List[Waiver]) -> None:
    """Give each waiver the full line span of the statement it annotates.

    A trailing waiver (comment on some line *inside* a multi-line
    statement) covers that statement's tightest containing span; a
    waiver on its own line covers the widest statement starting on the
    next line.  Both also keep the historical two-line window
    ``{line, line + 1}`` — a trailing waiver covering the immediately
    following line is an established idiom in this codebase.
    """
    spans = _statement_spans(tree)
    for waiver in waivers:
        lines = {waiver.line, waiver.line + 1}
        containing = [
            span for span in spans if span[0] <= waiver.line <= span[1]
        ]
        if containing:
            start, end = min(
                containing, key=lambda span: (span[1] - span[0], span[0])
            )
            lines.update(range(start, end + 1))
        following = [span for span in spans if span[0] == waiver.line + 1]
        if following:
            start, end = max(following, key=lambda span: span[1] - span[0])
            lines.update(range(start, end + 1))
        waiver.covered_lines = frozenset(lines)


def _lint_waivers(
    path: str,
    waivers: List[Waiver],
    select: Optional[frozenset],
) -> List[Finding]:
    """REPRO301/REPRO302 findings for one file's waiver comments."""
    findings: List[Finding] = []

    def emit(rule_id: str, waiver: Waiver, message: str) -> None:
        if select is not None and rule_id not in select:
            return
        rule = RULES_BY_ID[rule_id]
        findings.append(
            Finding(
                rule_id=rule_id,
                severity=rule.severity,
                path=path,
                line=waiver.line,
                column=0,
                message=message,
            )
        )

    for waiver in waivers:
        if not waiver.rule_ids:
            emit("REPRO301", waiver, "waiver lists no rule ids")
            continue
        unknown = [rid for rid in waiver.rule_ids if rid not in RULES_BY_ID]
        for rid in unknown:
            emit("REPRO301", waiver, f"waiver names unknown rule id {rid!r}")
        if not waiver.reason:
            emit(
                "REPRO301",
                waiver,
                f"waiver for {','.join(waiver.rule_ids)} has no reason; "
                "every waiver must say why the pattern is safe here",
            )
        if not unknown and waiver.reason and not waiver.used:
            emit(
                "REPRO302",
                waiver,
                f"waiver for {','.join(waiver.rule_ids)} suppressed nothing; "
                "remove it",
            )
    return findings


def _apply_waivers(findings: List[Finding], waivers: List[Waiver]) -> List[Finding]:
    """Mark findings covered by a well-formed waiver; flip ``used``."""
    out: List[Finding] = []
    for finding in findings:
        waived_by: Optional[Waiver] = None
        for waiver in waivers:
            if waiver.reason and waiver.covers(finding.rule_id, finding.line):
                waiver.used = True
                waived_by = waiver
                break
        if waived_by is None:
            out.append(finding)
        else:
            out.append(
                Finding(
                    rule_id=finding.rule_id,
                    severity=finding.severity,
                    path=finding.path,
                    line=finding.line,
                    column=finding.column,
                    message=finding.message,
                    waived=True,
                    waiver_reason=waived_by.reason,
                )
            )
    return out


def _dedupe(findings: Iterable[Finding]) -> List[Finding]:
    """Drop exact duplicates (nested loops can visit a node twice)."""
    seen = set()
    out = []
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.line, finding.column,
               finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out


def lint_sources(
    sources: Dict[str, str],
    select: Optional[Iterable[str]] = None,
    engine: str = "syntactic",
) -> LintResult:
    """Lint in-memory sources: ``{display_path: source_text}``.

    The primitive behind :func:`lint_paths`; also what the test suite
    and the mutation gate call directly.  ``engine="dataflow"`` runs
    the interprocedural analyses of :mod:`repro.lint.dataflow` instead
    of the superseded syntactic rules (REPRO103/REPRO401); the library
    default stays ``syntactic`` — the CLI is what defaults to
    ``dataflow``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown lint engine {engine!r}; expected {ENGINES}")
    chosen = frozenset(select) if select is not None else None
    result = LintResult()
    trees: Dict[str, ast.Module] = {}
    waivers_by_path: Dict[str, List[Waiver]] = {}
    for path in sorted(sources):
        result.files.append(path)
        try:
            trees[path] = ast.parse(sources[path], filename=path)
        except SyntaxError as exc:
            result.parse_failures.append((path, str(exc)))
            continue
        waivers = parse_waivers(sources[path])
        _attach_waiver_spans(trees[path], waivers)
        waivers_by_path[path] = waivers
    project = collect_project_context(trees)
    dataflow_by_path: Dict[str, List[Finding]] = {}
    if engine == "dataflow":
        from repro.lint.dataflow.engine import analyze_project

        for finding in analyze_project(trees, project):
            dataflow_by_path.setdefault(finding.path, []).append(finding)
    for path in sorted(trees):
        raw = run_rules(path, trees[path], project)
        if engine == "dataflow":
            raw = [f for f in raw if f.rule_id not in SUPERSEDED_BY_DATAFLOW]
            raw.extend(dataflow_by_path.get(path, []))
        raw = _dedupe(raw)
        if chosen is not None:
            raw = [f for f in raw if f.rule_id in chosen]
        waivers = waivers_by_path[path]
        findings = _apply_waivers(raw, waivers)
        findings.extend(_lint_waivers(path, waivers, chosen))
        result.findings.extend(findings)
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    engine: str = "syntactic",
) -> LintResult:
    """Lint a single in-memory module (convenience for tests)."""
    return lint_sources({path: source}, select=select, engine=engine)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    engine: str = "syntactic",
) -> LintResult:
    """Lint files/directories from disk.  See :func:`lint_sources`."""
    sources: Dict[str, str] = {}
    missing: List[str] = []
    for display, file in _iter_python_files(paths):
        try:
            sources[display] = file.read_text()
        except OSError as exc:
            missing.append(f"{display}: {exc}")
    result = lint_sources(sources, select=select, engine=engine)
    for entry in missing:
        result.parse_failures.append((entry.split(":", 1)[0], entry))
    return result
