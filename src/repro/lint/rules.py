"""The code-lint rule catalogue and the AST visitor that applies it.

Every rule protects one clause of the repo's determinism/soundness
contract (bounds bit-identical across ``--jobs``, cache state and
``PYTHONHASHSEED``; see ``docs/LINT.md`` for the full mapping):

========  ========  ===========================================================
id        severity  hazard
========  ========  ===========================================================
REPRO101  error     builtin ``sum()`` float accumulation (use ``math.fsum``)
REPRO102  error     ``acc += x`` float reduction loop (use ``math.fsum``)
REPRO103  error     iteration over a set/frozenset without ``sorted()``
REPRO104  error     process-global ``random`` / ordering by ``hash()``
REPRO105  error     wall-clock reads (``time.time``, ``datetime.now``, ...)
REPRO201  error     mutable default argument
REPRO202  warning   bare ``except:``
REPRO301  error     malformed waiver (no reason, or unknown rule id)
REPRO302  warning   unused waiver
REPRO401  error     SharedMemory/Pool acquired without paired cleanup
REPRO501  error     (dataflow) iteration order reaches a float fold
REPRO502  error     (dataflow) nondeterminism reaches a digest/cache key
REPRO503  error     (dataflow) nondeterminism reaches JSON/artefact emission
REPRO504  error     (dataflow) nondeterminism reaches a CostLedger counter
REPRO601  error     (dataflow) resource may escape without release/transfer
REPRO602  error     (dataflow) fork-captured object mutated after the fork
========  ========  ===========================================================

The REPRO1xx–4xx rules are single-statement pattern matchers; the
REPRO5xx/6xx rules come from :mod:`repro.lint.dataflow` and only fire
when a worklist fixpoint proves the hazard reaches a sink (or a
resource escapes).  ``--engine dataflow`` swaps REPRO103/REPRO401 for
their flow-sensitive successors.

The visitor is intentionally heuristic, not a type checker: it
over-approximates (``sum()`` of integer attributes still fires) and
relies on reviewed inline waivers for the remainder — a waiver with a
written reason *is* the review trail the rule exists to force.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectContext, annotation_is_set

__all__ = ["Rule", "RULES", "RULES_BY_ID", "run_rules"]


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: id, severity and what the rule protects."""

    rule_id: str
    severity: Severity
    summary: str
    rationale: str


RULES: List[Rule] = [
    Rule(
        "REPRO101",
        Severity.ERROR,
        "builtin sum() float accumulation; use math.fsum",
        "Sequential float addition is order-sensitive and accumulates "
        "rounding error; math.fsum is exactly rounded and "
        "order-independent, which the bit-identity contract relies on "
        "(the Network.port_utilization leak was this class).",
    ),
    Rule(
        "REPRO102",
        Severity.ERROR,
        "float reduction loop (acc = 0.0; acc += ...); use math.fsum",
        "The += spelling of REPRO101: same order sensitivity, same "
        "rounding drift, harder to spot in review.",
    ),
    Rule(
        "REPRO103",
        Severity.ERROR,
        "iteration over a set/frozenset without sorted()",
        "set/frozenset iteration order depends on insertion history and "
        "PYTHONHASHSEED; any numeric result or output fed from it is "
        "nondeterministic across processes and cache states.",
    ),
    Rule(
        "REPRO104",
        Severity.ERROR,
        "process-global random module or hash()-based ordering",
        "The module-level random functions share one implicitly seeded "
        "generator, and str hash() varies per process; both break "
        "replayability. Use an explicitly seeded random.Random and "
        "stable sort keys.",
    ),
    Rule(
        "REPRO105",
        Severity.ERROR,
        "wall-clock read (time.time, datetime.now, ...)",
        "Wall-clock values leak nondeterminism into analyzer and cache "
        "code paths; durations must use the monotonic "
        "time.perf_counter, and artefacts must not embed timestamps "
        "that break byte-identical reruns.",
    ),
    Rule(
        "REPRO201",
        Severity.ERROR,
        "mutable default argument",
        "A mutable default is shared across calls: state leaks between "
        "analyses and poisons memoized results.",
    ),
    Rule(
        "REPRO202",
        Severity.WARNING,
        "bare except:",
        "Bare except swallows CyclicRoutingError/UnstableNetworkError "
        "and even KeyboardInterrupt, hiding soundness failures instead "
        "of surfacing them through the exit-code contract.",
    ),
    Rule(
        "REPRO301",
        Severity.ERROR,
        "malformed waiver (missing reason or unknown rule id)",
        "A waiver is an audit record; without a reason (or naming a "
        "rule that does not exist) it documents nothing.",
    ),
    Rule(
        "REPRO302",
        Severity.WARNING,
        "unused waiver",
        "A waiver that suppresses nothing outlived its hazard and "
        "will silently excuse a future regression at that line.",
    ),
    Rule(
        "REPRO401",
        Severity.ERROR,
        "SharedMemory/Pool acquired without paired cleanup in the module",
        "A multiprocessing.shared_memory.SharedMemory segment outlives "
        "the process unless some path unlinks it, and a worker Pool "
        "that is never terminated/joined leaks child processes; a "
        "module that creates either must also contain the release "
        "call (route acquisition through repro.batch.shm / "
        "repro.batch.pool, which own the lifecycle).",
    ),
    Rule(
        "REPRO501",
        Severity.ERROR,
        "nondeterministic iteration order reaches a float fold",
        "Set/dict iteration order feeding builtin sum() or a += "
        "reduction makes the result depend on PYTHONHASHSEED and "
        "insertion history.  Unlike REPRO103 this fires only when the "
        "dataflow engine proves the order actually reaches an "
        "order-sensitive fold — sorted() or math.fsum anywhere on the "
        "path clears it.",
    ),
    Rule(
        "REPRO502",
        Severity.ERROR,
        "nondeterministic value reaches a digest / cache key",
        "A cache key or artefact digest built from set order, wall "
        "clock, RNG, hash() salt or the environment differs between "
        "processes: caches silently miss (or worse, collide) and "
        "byte-identity audits fail.  The diagnostic carries the full "
        "source -> through f() -> sink chain.",
    ),
    Rule(
        "REPRO503",
        Severity.ERROR,
        "nondeterministic value reaches JSON/artefact emission",
        "Artefacts are compared byte-for-byte across reruns "
        "(docs/OBSERVABILITY.md); a json.dump/write_text fed from an "
        "unordered iteration or ambient source breaks the replay "
        "contract exactly where it is audited.",
    ),
    Rule(
        "REPRO504",
        Severity.ERROR,
        "nondeterministic value reaches a CostLedger deterministic counter",
        "CostLedger.add_work/add_port_work/add_sweep feed the "
        "deterministic section of ledger snapshots, which must be "
        "bit-identical across --jobs and cache states; the runtime/"
        "cache channels are the sanctioned home for nondeterministic "
        "telemetry.",
    ),
    Rule(
        "REPRO601",
        Severity.ERROR,
        "acquired resource may escape without release or transfer",
        "Path-sensitive successor of REPRO401: a SharedMemory segment, "
        "arena or worker pool acquired on some path that can reach the "
        "function exit — or propagate an exception — while still owned "
        "leaks a kernel object.  Release it, return it, hand it to the "
        "repro.batch.shm._OWNED registry, or manage it with 'with'.",
    ),
    Rule(
        "REPRO602",
        Severity.ERROR,
        "object captured by a fork initializer is mutated after the fork",
        "Pool initializer arguments are snapshotted into workers at "
        "fork time; mutating the parent's copy afterwards silently "
        "diverges parent and workers, producing results that depend on "
        "fork timing.  Build the payload completely before the pool.",
    ),
]

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

#: Legacy rule ids that newer rules supersede.  A waiver naming the
#: old id also covers findings of its successors, so existing
#: ``allow[REPRO401]`` comments keep working under the dataflow engine.
WAIVER_ALIASES: Dict[str, tuple] = {"REPRO401": ("REPRO601", "REPRO602")}

#: Syntactic rules the dataflow engine replaces with flow-sensitive
#: successors (REPRO103 -> REPRO501/502/503/504, REPRO401 -> REPRO601).
SUPERSEDED_BY_DATAFLOW = frozenset({"REPRO103", "REPRO401"})


# ----------------------------------------------------------------------
# Expression classification helpers
# ----------------------------------------------------------------------

#: Module-level functions of ``random`` that use the shared global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "expovariate",
        "betavariate", "normalvariate", "lognormvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "getrandbits", "seed",
    }
)

#: ``module.attr`` pairs that read the wall clock.
_WALL_CLOCK_ATTRS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Wrappers that impose a deterministic order on an unordered iterable.
_ORDERING_WRAPPERS = frozenset({"sorted", "min", "max", "sum", "len", "fsum"})
# note: min/max/len/sum are order-*insensitive* consumers for the
# purposes of REPRO103 (sum's own hazard is REPRO101 and fires anyway).

#: Transparent wrappers: iterating these iterates the wrapped iterable.
_TRANSPARENT_WRAPPERS = frozenset({"enumerate", "reversed", "list", "tuple", "iter"})


def _call_name(node: ast.Call) -> str:
    """Bare callee name of a call (``x.f(...)`` and ``f(...)`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_int_like(node: ast.AST) -> bool:
    """Heuristic: the expression is obviously integer-valued.

    Covers the idioms ``sum(1 for ...)``, ``sum(len(x) for ...)`` and
    ``sum(a > b for ...)``; anything else is assumed float-capable.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int)  # bool is a subclass of int
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_int_like(node.operand)
    if isinstance(node, ast.Call):
        return _call_name(node) in {"len", "int", "ord", "round"} and not (
            _call_name(node) == "round" and len(node.args) > 1
        )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
    ):
        return _is_int_like(node.left) and _is_int_like(node.right)
    if isinstance(node, ast.IfExp):
        return _is_int_like(node.body) and _is_int_like(node.orelse)
    return False


def _sum_element_expr(node: ast.Call) -> Optional[ast.AST]:
    """The per-element expression of a ``sum(...)`` call, when visible."""
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return arg.elt
    return None


class _ScopeTypes:
    """Name classification within one function (or module) scope."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.set_names: Set[str] = set()
        self.float_zero_names: Dict[str, int] = {}  # name -> init lineno

    # -- set-typed expressions -----------------------------------------

    def is_set_expr(self, node: ast.AST) -> bool:
        """True when ``node`` evaluates to a set/frozenset (heuristic)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in {"set", "frozenset"}:
                return True
            if name in self.project.set_returning:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: a | b, a & b, a - b, a ^ b
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(node.orelse)
        return False

    def learn_assignments(self, body: List[ast.stmt]) -> None:
        """Pre-scan a scope body for set-typed and float-zero names.

        Two passes so a name assigned from another set-typed name is
        still recognized (one level of indirection is enough for the
        idioms in this codebase).
        """
        assigns: List[ast.Assign] = [
            stmt
            for stmt in ast.walk(_Block(body))
            if isinstance(stmt, ast.Assign)
        ]
        anns = [
            stmt
            for stmt in ast.walk(_Block(body))
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        ]
        for stmt in anns:
            if annotation_is_set(stmt.annotation):
                self.set_names.add(stmt.target.id)
        for _ in range(2):
            for stmt in assigns:
                if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                    continue
                name = stmt.targets[0].id
                if self.is_set_expr(stmt.value):
                    self.set_names.add(name)
        for stmt in assigns:
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Constant) and isinstance(value.value, float):
                self.float_zero_names.setdefault(stmt.targets[0].id, stmt.lineno)


class _Block(ast.AST):
    """Wrapper so ``ast.walk`` can traverse a plain statement list."""

    _fields = ("body",)

    def __init__(self, body: List[ast.stmt]) -> None:
        self.body = body


# ----------------------------------------------------------------------
# The visitor
# ----------------------------------------------------------------------


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass AST walk emitting findings for every code rule."""

    def __init__(self, path: str, project: ProjectContext) -> None:
        self.path = path
        self.project = project
        self.findings: List[Finding] = []
        self._scope = _ScopeTypes(project)
        self._loop_depth = 0
        self._module_refs: Set[str] = set()

    # -- plumbing -------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = RULES_BY_ID[rule_id]
        self.findings.append(
            Finding(
                rule_id=rule_id,
                severity=rule.severity,
                path=self.path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def lint_module(self, tree: ast.Module) -> List[Finding]:
        # Module-wide reference pre-scan for REPRO401: any mention of a
        # release call anywhere in the module (an attribute access, a
        # bare name, a method definition) counts as the paired cleanup.
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                self._module_refs.add(node.attr)
            elif isinstance(node, ast.Name):
                self._module_refs.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_refs.add(node.name)
        self._scope.learn_assignments(tree.body)
        self.visit(tree)
        return self.findings

    # -- scopes ---------------------------------------------------------

    def _visit_function(self, node) -> None:
        self._check_mutable_defaults(node)
        outer_scope, outer_depth = self._scope, self._loop_depth
        self._scope = _ScopeTypes(self.project)
        self._loop_depth = 0
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None and annotation_is_set(arg.annotation):
                self._scope.set_names.add(arg.arg)
        self._scope.learn_assignments(node.body)
        for stmt in node.body:
            self.visit(stmt)
        self._scope, self._loop_depth = outer_scope, outer_depth

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- REPRO201: mutable defaults ------------------------------------

    def _check_mutable_defaults(self, node) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                          ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and _call_name(default) in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self._emit(
                    "REPRO201",
                    default,
                    f"function {node.name}() has a mutable default argument; "
                    "default to None and create the object inside",
                )

    # -- REPRO202: bare except -----------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "REPRO202",
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides analysis errors; name the exceptions",
            )
        self.generic_visit(node)

    # -- REPRO101 / REPRO104: calls ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name == "sum":
            element = _sum_element_expr(node)
            if element is None or not _is_int_like(element):
                self._emit(
                    "REPRO101",
                    node,
                    "builtin sum() accumulates floats with order-dependent "
                    "rounding; use math.fsum (or waive if integer-valued)",
                )
        if isinstance(node.func, ast.Name) and name == "hash":
            self._emit(
                "REPRO104",
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "derive ordering/digests from stable keys instead",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            and node.func.attr in _GLOBAL_RANDOM_FNS
        ):
            self._emit(
                "REPRO104",
                node,
                f"random.{node.func.attr}() uses the process-global RNG; "
                "use an explicitly seeded random.Random instance",
            )
        self._check_resource_lifecycle(node, name)
        self.generic_visit(node)

    # -- REPRO401: resource lifecycle ----------------------------------

    def _check_resource_lifecycle(self, node: ast.Call, name: str) -> None:
        if name == "SharedMemory" and not any(
            "unlink" in ref for ref in self._module_refs
        ):
            self._emit(
                "REPRO401",
                node,
                "SharedMemory segment created but the module never "
                "references unlink(); POSIX segments outlive the process "
                "— release through repro.batch.shm or unlink explicitly",
            )
        if name == "Pool" and not (
            self._module_refs & {"terminate", "join", "close"}
        ):
            self._emit(
                "REPRO401",
                node,
                "worker Pool created but the module never references "
                "terminate()/join()/close(); leaked child processes — "
                "use repro.batch.pool.WorkerPool or close explicitly",
            )

    # -- REPRO105: wall clock ------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name is not None and (base_name, node.attr) in _WALL_CLOCK_ATTRS:
            self._emit(
                "REPRO105",
                node,
                f"{base_name}.{node.attr}() reads the wall clock; use the "
                "monotonic time.perf_counter for durations and keep "
                "timestamps out of analyzer/cache/artefact code",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in {"time", "datetime"}:
            for alias in node.names:
                if (node.module.split(".")[-1], alias.name) in _WALL_CLOCK_ATTRS or (
                    node.module == "time" and alias.name in {"time", "time_ns"}
                ):
                    self._emit(
                        "REPRO105",
                        node,
                        f"'from {node.module} import {alias.name}' imports a "
                        "wall-clock reader; use time.perf_counter",
                    )
        self.generic_visit(node)

    # -- REPRO102 / REPRO103: loops ------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter)
        self._loop_depth += 1
        self._check_reduction_loop(node)
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self._check_reduction_loop(node)
        self.generic_visit(node)
        self._loop_depth -= 1

    def _comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_unordered_iteration(gen.iter)
        self.generic_visit(node)

    visit_GeneratorExp = _comprehension
    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension

    def _check_unordered_iteration(self, iter_expr: ast.AST) -> None:
        expr = iter_expr
        while isinstance(expr, ast.Call) and _call_name(expr) in _TRANSPARENT_WRAPPERS:
            if not expr.args:
                return
            expr = expr.args[0]
        if isinstance(expr, ast.Call) and _call_name(expr) in _ORDERING_WRAPPERS:
            return
        if self._scope.is_set_expr(expr):
            self._emit(
                "REPRO103",
                iter_expr,
                "iterating a set/frozenset: order varies with insertion "
                "history and PYTHONHASHSEED; wrap in sorted()",
            )

    def _check_reduction_loop(self, loop) -> None:
        for stmt in ast.walk(_Block(loop.body)):
            if (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.op, ast.Add)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in self._scope.float_zero_names
                and self._scope.float_zero_names[stmt.target.id] < stmt.lineno
                and not _is_int_like(stmt.value)
            ):
                self._emit(
                    "REPRO102",
                    stmt,
                    f"float reduction loop on {stmt.target.id!r} "
                    "(initialized to a float constant, += in a loop); "
                    "collect terms and use math.fsum",
                )


def run_rules(path: str, tree: ast.Module, project: ProjectContext) -> List[Finding]:
    """Apply every code rule to one parsed module."""
    return _RuleVisitor(path, project).lint_module(tree)
