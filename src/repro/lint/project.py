"""Project-wide context for the lint rules (two-pass engine, pass 1).

Rules such as REPRO103 (unordered set iteration) need to know more
than one statement shows: ``for v in self.vls_at_port(port)`` is a
hazard only because ``vls_at_port`` returns a ``FrozenSet``.  Before
any rule runs, the engine parses *every* file under analysis and
collects the names of functions/methods whose **return annotation** is
a set type.  Rules then treat a call to any such name as producing a
set, wherever the call appears — a deliberately name-based (not fully
type-resolved) inference: it needs no third-party type checker, and a
rare false positive is exactly what inline waivers are for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Set

__all__ = ["ProjectContext", "collect_project_context", "annotation_is_set"]

#: Annotation heads that denote an unordered hash-based collection.
_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet", "KeysView"}
)


def _annotation_head(node: ast.AST) -> str:
    """The leading name of an annotation node (``FrozenSet[str]`` -> ``FrozenSet``)."""
    if isinstance(node, ast.Subscript):
        return _annotation_head(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: "FrozenSet[str]" — take the part before '['
        return node.value.split("[", 1)[0].strip()
    return ""


def annotation_is_set(node: ast.AST) -> bool:
    """True when a return/variable annotation denotes a set type."""
    return _annotation_head(node) in _SET_ANNOTATION_NAMES


@dataclass
class ProjectContext:
    """What pass 1 learned about the whole file set under analysis.

    Attributes
    ----------
    set_returning:
        Bare function/method names annotated to return a set type.
        Name-based: a call ``x.vls_at_port(...)`` matches the method
        definition ``def vls_at_port(...) -> FrozenSet[str]`` found in
        *any* linted file.
    """

    set_returning: Set[str] = field(default_factory=set)


def collect_project_context(trees: Dict[str, ast.AST]) -> ProjectContext:
    """Pass 1: harvest signatures from the parsed files.

    Parameters
    ----------
    trees:
        Mapping of display path to parsed module, as produced by the
        engine.  Iteration order does not matter — the result is a set.
    """
    ctx = ProjectContext()
    for tree in trees.values():
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and annotation_is_set(node.returns):
                    ctx.set_returning.add(node.name)
    return ctx
