"""Inline waiver comments: ``# repro-lint: allow[RULE-ID] reason``.

A waiver suppresses findings of the listed rule ids on its own line or
on the line immediately below (so it can sit above a long statement).
Several ids may be listed comma-separated::

    demand = sum(counts)  # repro-lint: allow[REPRO101] integer counters
    # repro-lint: allow[REPRO101,REPRO103] ordered tuple; fsum shifts goldens
    total = sum(values)

Waivers are themselves linted: a waiver without a reason or naming an
unknown rule id is a REPRO301 error, and a waiver that suppressed
nothing is a REPRO302 warning — stale waivers must not outlive the
hazard they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["Waiver", "parse_waivers", "WAIVER_RE"]

#: Matches one waiver comment token.
WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass
class Waiver:
    """One parsed waiver comment.

    ``used`` is flipped by the engine when the waiver suppresses at
    least one finding; unused waivers are reported as REPRO302.
    """

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str, line: int) -> bool:
        """True when this waiver applies to ``rule_id`` at ``line``.

        A waiver covers its own line and the line immediately below.
        """
        return rule_id in self.rule_ids and line in (self.line, self.line + 1)


def parse_waivers(source: str) -> List[Waiver]:
    """Extract every waiver comment of a source file, in line order.

    Tokenizes the source so only real ``#`` comments count — a waiver
    *example* inside a docstring (as in this module's own docstring)
    is documentation, not a waiver.  Files that fail to tokenize
    return no waivers; the engine separately reports the parse error.
    """
    waivers: List[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = WAIVER_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        waivers.append(
            Waiver(line=token.start[0], rule_ids=ids, reason=match.group("reason"))
        )
    return waivers


def index_by_rule(waivers: List[Waiver]) -> Dict[str, List[Waiver]]:
    """Group waivers by each rule id they name (for O(1)-ish lookups)."""
    index: Dict[str, List[Waiver]] = {}
    for waiver in waivers:
        for rule_id in waiver.rule_ids:
            index.setdefault(rule_id, []).append(waiver)
    return index


def known_rule_ids(waivers: List[Waiver], known: Set[str]) -> List[Tuple[Waiver, str]]:
    """The ``(waiver, bad_id)`` pairs naming rule ids that do not exist."""
    out: List[Tuple[Waiver, str]] = []
    for waiver in waivers:
        for rule_id in waiver.rule_ids:
            if rule_id not in known:
                out.append((waiver, rule_id))
    return out
