"""Inline waiver comments: ``# repro-lint: allow[RULE-ID] reason``.

A waiver suppresses findings of the listed rule ids on the statement
it annotates: its own line, the line immediately below, and — when
that statement spans several physical lines — every line of the
statement (the engine computes the span from the AST and stores it in
:attr:`Waiver.covered_lines`, so a waiver above a wrapped ``sum(...)``
covers the whole call, not just its first line).  Several ids may be
listed comma-separated::

    demand = sum(counts)  # repro-lint: allow[REPRO101] integer counters
    # repro-lint: allow[REPRO101,REPRO103] ordered tuple; fsum shifts goldens
    total = sum(values)

Retired rule ids stay honoured: a waiver naming ``REPRO401`` also
covers findings of its dataflow successors (see
:data:`repro.lint.rules.WAIVER_ALIASES`), so upgrading the engine does
not invalidate the existing review trail.

Waivers are themselves linted: a waiver without a reason or naming an
unknown rule id is a REPRO301 error, and a waiver that suppressed
nothing is a REPRO302 warning — stale waivers must not outlive the
hazard they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["Waiver", "parse_waivers", "WAIVER_RE"]

#: Matches one waiver comment token.
WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass
class Waiver:
    """One parsed waiver comment.

    ``used`` is flipped by the engine when the waiver suppresses at
    least one finding; unused waivers are reported as REPRO302.
    """

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)
    #: Full set of physical lines this waiver covers — the annotated
    #: statement's span, filled in by the engine from the AST.  When
    #: ``None`` (no span information available) the legacy two-line
    #: window applies.
    covered_lines: Optional[FrozenSet[int]] = field(default=None, compare=False)

    def _names(self, rule_id: str) -> bool:
        if rule_id in self.rule_ids:
            return True
        from repro.lint.rules import WAIVER_ALIASES

        return any(
            rule_id in WAIVER_ALIASES.get(listed, ()) for listed in self.rule_ids
        )

    def covers(self, rule_id: str, line: int) -> bool:
        """True when this waiver applies to ``rule_id`` at ``line``.

        A waiver covers the full statement it annotates (own line,
        next line, and — once the engine attached the AST span — every
        physical line of that statement).  Rule ids are matched
        including legacy aliases (``allow[REPRO401]`` covers REPRO601).
        """
        if not self._names(rule_id):
            return False
        if self.covered_lines is not None:
            return line in self.covered_lines
        return line in (self.line, self.line + 1)


def parse_waivers(source: str) -> List[Waiver]:
    """Extract every waiver comment of a source file, in line order.

    Tokenizes the source so only real ``#`` comments count — a waiver
    *example* inside a docstring (as in this module's own docstring)
    is documentation, not a waiver.  Files that fail to tokenize
    return no waivers; the engine separately reports the parse error.
    """
    waivers: List[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = WAIVER_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        waivers.append(
            Waiver(line=token.start[0], rule_ids=ids, reason=match.group("reason"))
        )
    return waivers


def index_by_rule(waivers: List[Waiver]) -> Dict[str, List[Waiver]]:
    """Group waivers by each rule id they name (for O(1)-ish lookups)."""
    index: Dict[str, List[Waiver]] = {}
    for waiver in waivers:
        for rule_id in waiver.rule_ids:
            index.setdefault(rule_id, []).append(waiver)
    return index


def known_rule_ids(waivers: List[Waiver], known: Set[str]) -> List[Tuple[Waiver, str]]:
    """The ``(waiver, bad_id)`` pairs naming rule ids that do not exist."""
    out: List[Tuple[Waiver, str]] = []
    for waiver in waivers:
        for rule_id in waiver.rule_ids:
            if rule_id not in known:
                out.append((waiver, rule_id))
    return out
