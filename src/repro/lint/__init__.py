"""Static-analysis subsystem: the repo's determinism/soundness linter.

The analyses in this repository promise more than "roughly correct
numbers": bounds must be *bit-identical* across ``--jobs N``, across
cold and warm cache runs, and across ``PYTHONHASHSEED`` variation
(see ``docs/INCREMENTAL.md``).  Two shipped bugs broke that promise in
mechanically detectable ways — an insertion-order float-sum leak in
``Network.port_utilization`` and a concavity micro-segment born of
float noise — so this package enforces the hazard classes as lint
rules over the source tree itself:

* float accumulation through builtin ``sum()`` or ``+=`` reduction
  loops instead of :func:`math.fsum` (REPRO101 / REPRO102);
* iteration over ``set``/``frozenset`` values whose order feeds
  results, without a ``sorted()`` (REPRO103);
* the process-global ``random`` module and order-by-``hash()``
  (REPRO104);
* wall-clock reads — ``time.time``, ``datetime.now`` — in analyzer or
  cache code (REPRO105);
* mutable default arguments (REPRO201) and bare ``except:`` (REPRO202);
* malformed or unused inline waivers (REPRO301 / REPRO302).

On top of the syntactic rules sits the whole-program dataflow engine
(:mod:`repro.lint.dataflow`, the CLI default via ``--engine
dataflow``): an interprocedural taint analysis that reports unordered
iteration, wall-clock, RNG and environment reads only when they
*reach* a float fold, digest, artefact emission or ``CostLedger``
counter (REPRO501–REPRO504, with the full ``source → through f() →
sink`` chain in the diagnostic), and a path-sensitive ownership
analysis for SharedMemory/pool lifetimes and fork safety
(REPRO601/REPRO602, superseding the syntactic REPRO401).  Committed
baselines (:mod:`repro.lint.baseline`) ratchet new findings without
blocking on historical ones.

Run it as ``python -m repro.lint src/`` (text or ``--format json``).
A finding is silenced only by an inline waiver **with a reason**::

    total = sum(counts)  # repro-lint: allow[REPRO101] integer counters

The full rule catalogue, waiver syntax and the mapping from each rule
to the determinism contract it protects live in ``docs/LINT.md``.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (
    ENGINES,
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.findings import Finding, Severity
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES, Rule

__all__ = [
    "Finding",
    "Severity",
    "LintResult",
    "ENGINES",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "render_text",
    "render_json",
    "RULES",
    "Rule",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
