"""Command line of the code linter: ``python -m repro.lint [PATHS...]``.

Exit codes
----------

0 no unwaived findings · 1 unwaived warnings only · 2 usage error
(argparse) · 3 unwaived errors (or unparsable files).

``--format json`` emits the stable machine form consumed by CI; text
is the default for humans.  ``--show-waived`` lists waived findings in
the text report (JSON always includes them, flagged ``"waived": true``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES

__all__ = ["main", "build_parser", "EXIT_CLEAN", "EXIT_WARNINGS", "EXIT_ERRORS"]

EXIT_CLEAN = 0
EXIT_WARNINGS = 1
# argparse exits with 2 on usage errors
EXIT_ERRORS = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Determinism/soundness linter for the repro codebase "
        "(rule catalogue in docs/LINT.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also list waived findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.severity.value:<8} {rule.summary}")
        return EXIT_CLEAN
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    result = lint_paths(args.paths, select=select)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result, show_waived=args.show_waived))
    if result.errors or result.parse_failures:
        return EXIT_ERRORS
    if result.warnings:
        return EXIT_WARNINGS
    return EXIT_CLEAN
