"""Command line of the code linter: ``python -m repro.lint [PATHS...]``.

Exit codes
----------

0 no unwaived findings · 1 unwaived warnings only · 2 usage error
(argparse) · 3 unwaived errors (or unparsable files).

``--format json`` emits the stable machine form consumed by CI; text
is the default for humans.  ``--show-waived`` lists waived findings in
the text report (JSON always includes them, flagged ``"waived": true``).

The CLI defaults to ``--engine dataflow`` — the interprocedural
REPRO5xx/6xx analyses — while the library API keeps the syntactic
engine as its default.  ``--baseline lint_baseline.json`` turns the
run into a ratchet: findings recorded in the baseline are reported but
do not fail the run, new ones do; ``--write-baseline`` regenerates the
file and ``--strict`` ignores it (advisory full-severity mode, the
lint mirror of ``bench_gate.py --strict``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import ENGINES, LintResult, lint_paths
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES

__all__ = ["main", "build_parser", "EXIT_CLEAN", "EXIT_WARNINGS", "EXIT_ERRORS"]

EXIT_CLEAN = 0
EXIT_WARNINGS = 1
# argparse exits with 2 on usage errors
EXIT_ERRORS = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Determinism/soundness linter for the repro codebase "
        "(rule catalogue in docs/LINT.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also list waived findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default="dataflow",
        help="syntactic: single-statement pattern rules; dataflow "
        "(default): interprocedural taint + ownership analyses "
        "(REPRO5xx/6xx replace REPRO103/REPRO401)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="ratchet file: findings recorded there are reported but "
        "do not fail the run; new findings still do",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="ignore --baseline: every finding counts (advisory mode)",
    )
    return parser


def _apply_baseline_file(result: LintResult, path: Path) -> int:
    """Mark baselined findings; returns how many were suppressed."""
    baseline = load_baseline(path) if path.exists() else {}
    _new, baselined = apply_baseline(result.active, baseline)
    if not baselined:
        return 0
    suppressed = {id(finding) for finding in baselined}
    result.findings = [
        replace(finding, waived=True, waiver_reason=f"baselined in {path}")
        if id(finding) in suppressed
        else finding
        for finding in result.findings
    ]
    return len(baselined)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.severity.value:<8} {rule.summary}")
        return EXIT_CLEAN
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline PATH", file=sys.stderr)
        return 2
    result = lint_paths(args.paths, select=select, engine=args.engine)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.write_baseline:
            write_baseline(baseline_path, result.active)
            print(
                f"wrote {len(result.active)} finding(s) to {baseline_path}"
            )
            return EXIT_CLEAN
        if not args.strict:
            try:
                _apply_baseline_file(result, baseline_path)
            except BaselineError as exc:
                print(str(exc), file=sys.stderr)
                return EXIT_ERRORS
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result, show_waived=args.show_waived))
    if result.errors or result.parse_failures:
        return EXIT_ERRORS
    if result.warnings:
        return EXIT_WARNINGS
    return EXIT_CLEAN
