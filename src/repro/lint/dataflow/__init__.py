"""Whole-program dataflow engine behind ``repro.lint --engine dataflow``.

The syntactic rules (:mod:`repro.lint.rules`) are single-statement
pattern matchers: REPRO103 flags *every* unsorted set iteration and
REPRO401 pairs a ``SharedMemory`` acquisition with *any* mention of a
release call in the same module.  Both over-approximate.  This package
trades the cheap check for an accurate one:

* :mod:`repro.lint.dataflow.cfg` builds an intraprocedural control-flow
  graph per function — statement-granular, with explicit exception
  edges, duplicated ``finally`` bodies (normal vs. exceptional copy)
  and ``with``-exit nodes, so path-sensitive facts survive ``try``/
  ``except``/``finally``, ``with``, ``while``/``else`` and early
  returns.
* :mod:`repro.lint.dataflow.domain` defines the abstract domain: a
  taint lattice over value provenance (set-iteration order, unordered
  mapping order, wall clock, global RNG, process environment, hash
  salt), with deterministic joins — chains are tie-broken
  lexicographically so the fixpoint output is byte-identical across
  ``PYTHONHASHSEED``.
* :mod:`repro.lint.dataflow.summaries` computes a project-wide call
  graph (name-based, reusing the :mod:`repro.lint.project` walker's
  idiom) and per-function summaries — which parameters flow to the
  return value, which taints a call introduces, whether the return
  value carries an unreleased resource — iterated to a fixpoint so
  taint and ownership cross function and module boundaries.
* :mod:`repro.lint.dataflow.taint` is the nondeterminism taint
  analysis (REPRO501–REPRO504): a worklist fixpoint per function that
  reports only when a tainted value *reaches* a sink (order-sensitive
  float fold, digest/cache-key construction, JSON/artefact emission,
  ``CostLedger`` deterministic counters), carrying the full
  ``source → through f() → sink`` chain in the diagnostic.
* :mod:`repro.lint.dataflow.ownership` is the resource lifetime
  analysis (REPRO601, superseding the syntactic REPRO401) — a
  path-sensitive escape check over the CFG flagging acquire sites that
  can leave the function (including on exception edges) without a
  release or an ownership transfer — plus the fork-safety rule
  (REPRO602) for objects captured by a pool initializer and mutated
  after the fork.

The entry point is :func:`repro.lint.dataflow.engine.analyze_project`;
``repro.lint.engine.lint_sources(..., engine="dataflow")`` layers it
under the existing waiver/report machinery, and
:mod:`repro.lint.baseline` tracks pre-existing findings so only *new*
ones fail ``check.sh``.
"""

from __future__ import annotations

from repro.lint.dataflow.cfg import CFG, build_cfg
from repro.lint.dataflow.engine import analyze_project
from repro.lint.dataflow.summaries import FunctionSummary, build_summaries

__all__ = ["CFG", "build_cfg", "analyze_project", "FunctionSummary", "build_summaries"]
