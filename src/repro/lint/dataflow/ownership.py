"""Resource ownership and fork-safety analysis (REPRO601, REPRO602).

REPRO601 replaces the syntactic REPRO401 pairing heuristic with a
path-sensitive escape check.  The analysis runs forward over the
:mod:`.cfg` graph mapping each local name to the set of acquire sites
it may hold (``SharedMemory``/``ShmArena``/``WorkerPool``/``Pool``
constructions, plus any project function whose summary says its return
value carries an unreleased resource).  An acquire obligation dies
when the path

* calls a release method on the name (``close``, ``unlink``,
  ``close_and_unlink``, ``terminate``, ``join``, ``shutdown``,
  ``release``),
* passes the bare name to *any* call — ownership transfer; this is
  what makes ``_register_owned(seg)`` (the :data:`repro.batch.shm._OWNED`
  hand-off) and the atexit sweep free of false positives,
* returns it (the caller inherits the obligation via the function's
  ``resource_indices`` summary),
* stores it on an object or into a container, or
* leaves the ``with`` block managing it (the ``with``-exit node is a
  release on both the normal and the exceptional path).

Any obligation still live at the function's ``exit`` or ``raise`` node
is a leak; exception edges carry the state *before* the raising
statement's own bindings, so ``seg = SharedMemory(...)`` raising does
not report ``seg``, while a later statement raising before
``seg.close()`` does — with the escaping line in the diagnostic.

At module top level only the exception path is checked: module globals
are program-lifetime by design (the atexit sweep owns them), but an
import that dies halfway still strands kernel objects.

REPRO602 is the fork-safety check: an object captured by a pool
initializer (``initargs=...`` or a ``WorkerPool`` payload) is
snapshotted into the workers at fork time; mutating it on any path
*after* the pool exists silently diverges parent from workers.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.lint.dataflow.summaries import FunctionInfo, SummaryMap
from repro.lint.findings import Finding
from repro.lint.rules import RULES_BY_ID, _call_name

__all__ = [
    "OWNERSHIP_RULE_IDS",
    "report_module",
    "resource_summary",
]

OWNERSHIP_RULE_IDS = ("REPRO601", "REPRO602")

#: Constructors / acquire helpers that create a release obligation.
_ACQUIRE_NAMES = frozenset(
    {"SharedMemory", "ShmArena", "WorkerPool", "Pool", "_attach_untracked"}
)

#: Methods that discharge an obligation on their receiver.
_RELEASE_METHODS = frozenset(
    {"close", "unlink", "close_and_unlink", "terminate", "join",
     "shutdown", "release"}
)

#: Pool constructors whose captured state is fork-snapshotted.
_FORK_POOLS = frozenset({"Pool", "WorkerPool"})

#: In-place mutators for the fork-safety check.
_MUTATORS = frozenset(
    {"append", "extend", "add", "update", "clear", "pop", "popitem",
     "remove", "discard", "insert", "setdefault", "sort", "reverse"}
)

_MAX_PASSES = 40

#: One obligation: ``(acquire_line, callee_name)``.
_Record = Tuple[int, str]
#: Abstract state: name → sorted tuple of obligations it may hold.
_State = Dict[str, Tuple[_Record, ...]]


def _join(a: _State, b: _State) -> _State:
    out = dict(a)
    for name, records in b.items():
        if name in out:
            out[name] = tuple(sorted(set(out[name]) | set(records)))
        else:
            out[name] = records
    return out


def _null_test(test: ast.AST) -> Optional[Tuple[str, str]]:
    """``(name, edge_kind_on_which_name_is_None)`` for null-check tests.

    Recognizes ``if x is None`` (true edge), ``if x is not None``
    (false edge), ``if x:`` (false edge) and ``if not x:`` (true
    edge).  On the None/falsy edge the name cannot hold a live
    resource, so the guard ``if arena is not None: arena.close()``
    discharges the obligation on *both* branches.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, comparator = test.left, test.comparators[0]
        is_none = (
            isinstance(comparator, ast.Constant) and comparator.value is None
        )
        if isinstance(left, ast.Name) and is_none:
            if isinstance(test.ops[0], ast.Is):
                return (left.id, "true")
            if isinstance(test.ops[0], ast.IsNot):
                return (left.id, "false")
    if isinstance(test, ast.Name):
        return (test.id, "false")
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
    ):
        return (test.operand.id, "true")
    return None


def _names_in(expr: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(expr) if isinstance(sub, ast.Name)}


def _stmt_calls(stmt: ast.stmt) -> List[ast.Call]:
    from repro.lint.dataflow.taint import _stmt_exprs

    calls: List[ast.Call] = []
    for expr in _stmt_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                calls.append(sub)
    return calls


class _Ownership:
    """The per-suite must-release fixpoint."""

    def __init__(self, path: str, body: Sequence[ast.stmt],
                 summaries: SummaryMap) -> None:
        self.path = path
        self.summaries = summaries
        self.cfg = build_cfg(body)

    # -- acquire classification ----------------------------------------

    def _acquired(self, expr: ast.AST) -> Optional[Tuple[str, Union[str, Tuple[int, ...]]]]:
        """``(callee, indices)`` if ``expr`` is an acquiring call."""
        if not isinstance(expr, ast.Call):
            return None
        name = _call_name(expr)
        if name in _ACQUIRE_NAMES:
            return (name, "all")
        summary = self.summaries.lookup(name)
        if summary is not None and summary.resource_indices is not None:
            return (name, summary.resource_indices)
        return None

    # -- transfer -------------------------------------------------------

    def transfer(self, node: CFGNode, state: _State) -> Tuple[_State, _State]:
        """Returns ``(out_normal, out_exceptional)``.

        The exceptional state has this statement's kills applied (a
        release that raised still counts as attempted — reporting it
        would double up) but not its acquires (a constructor that
        raised never bound the name).
        """
        label = node.label
        stmt = node.stmt
        if label.startswith("with-exit"):
            out = dict(state)
            for item in stmt.items:  # type: ignore[union-attr]
                if isinstance(item.optional_vars, ast.Name):
                    out.pop(item.optional_vars.id, None)
                if isinstance(item.context_expr, ast.Name):
                    out.pop(item.context_expr.id, None)
            return out, out
        if stmt is None or not isinstance(stmt, ast.stmt):
            return state, state

        out = dict(state)

        # kills: releases and ownership transfers
        for call in _stmt_calls(stmt):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RELEASE_METHODS
                and isinstance(func.value, ast.Name)
            ):
                out.pop(func.value.id, None)
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Name):
                    out.pop(arg.id, None)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            # transfer only when the *handle itself* is returned (bare
            # name or tuple element — the shapes resource_summary
            # propagates to callers); `return len(seg.buf)` is a use,
            # not a transfer
            returned = [stmt.value]
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                returned = list(stmt.value.elts)
            for expr in returned:
                if isinstance(expr, ast.Name):
                    out.pop(expr.id, None)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    # stored into an object/container: transferred
                    for name in _names_in(stmt.value):
                        out.pop(name, None)
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)

        exc_out = dict(out)

        # gens and rebinds
        if isinstance(stmt, ast.Assign):
            acquired = self._acquired(stmt.value)
            move = (
                stmt.value.id
                if isinstance(stmt.value, ast.Name) and stmt.value.id in out
                else None
            )
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
                    if acquired is not None:
                        callee, _indices = acquired
                        out[target.id] = ((stmt.lineno, callee),)
                    elif move is not None:
                        out[target.id] = out.get(move, state.get(move, ()))
                elif isinstance(target, (ast.Tuple, ast.List)) and acquired:
                    callee, indices = acquired
                    for index, elt in enumerate(target.elts):
                        if not isinstance(elt, ast.Name):
                            continue
                        out.pop(elt.id, None)
                        if indices == "all" or index in indices:
                            out[elt.id] = ((stmt.lineno, callee),)
            if move is not None and any(
                isinstance(t, ast.Name) for t in stmt.targets
            ):
                out.pop(move, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.pop(stmt.target.id, None)
            if stmt.value is not None and self._acquired(stmt.value):
                callee, _indices = self._acquired(stmt.value)  # type: ignore[misc]
                out[stmt.target.id] = ((stmt.lineno, callee),)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _names_in(stmt.target):
                out.pop(name, None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)) and not label.startswith(
            "with-exit"
        ):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    out.pop(item.optional_vars.id, None)
                    acquired = self._acquired(item.context_expr)
                    if acquired is not None:
                        out[item.optional_vars.id] = (
                            (stmt.lineno, acquired[0]),
                        )

        return out, exc_out

    @staticmethod
    def _refine(pred: CFGNode, kind: str, state: _State) -> _State:
        """Branch-sensitive narrowing along true/false edges."""
        if kind not in ("true", "false") or not isinstance(
            pred.stmt, (ast.If, ast.While)
        ):
            return state
        test = _null_test(pred.stmt.test)
        if test is None:
            return state
        name, none_kind = test
        if kind == none_kind and name in state:
            out = dict(state)
            out.pop(name)
            return out
        return state

    # -- fixpoint -------------------------------------------------------

    def run(self) -> Tuple[Dict[int, _State], Dict[int, _State], Dict[int, _State]]:
        cfg = self.cfg
        order = cfg.rpo()
        in_states: Dict[int, _State] = {cfg.entry: {}}
        out_states: Dict[int, _State] = {}
        exc_states: Dict[int, _State] = {}
        out_states[cfg.entry], exc_states[cfg.entry] = self.transfer(
            cfg.node(cfg.entry), {}
        )
        for _ in range(_MAX_PASSES):
            changed = False
            for nid in order:
                if nid == cfg.entry:
                    continue
                state: _State = {}
                for pred, kind in cfg.preds(nid):
                    source = exc_states if kind == "except" else out_states
                    if pred in source:
                        state = _join(
                            state,
                            self._refine(cfg.node(pred), kind, source[pred]),
                        )
                new_out, new_exc = self.transfer(cfg.node(nid), state)
                if out_states.get(nid) != new_out or exc_states.get(nid) != new_exc:
                    changed = True
                in_states[nid] = state
                out_states[nid] = new_out
                exc_states[nid] = new_exc
            if not changed:
                break
        return in_states, out_states, exc_states


def _leaks_at(
    cfg: CFG,
    target: int,
    out_states: Dict[int, _State],
    exc_states: Dict[int, _State],
) -> Dict[Tuple[str, _Record], int]:
    """Obligations live on an edge into ``target`` → min escaping line."""
    leaks: Dict[Tuple[str, _Record], int] = {}
    for pred, kind in cfg.preds(target):
        source = exc_states if kind == "except" else out_states
        state = source.get(pred)
        if state:
            state = _Ownership._refine(cfg.node(pred), kind, state)
        if not state:
            continue
        line = cfg.node(pred).line
        for name in sorted(state):
            for record in state[name]:
                key = (name, record)
                escape = line if line > 0 else record[0]
                if key not in leaks or escape < leaks[key]:
                    leaks[key] = escape
    return leaks


def _leak_findings(
    path: str,
    ownership: _Ownership,
    out_states: Dict[int, _State],
    exc_states: Dict[int, _State],
    check_exit: bool,
) -> List[Finding]:
    cfg = ownership.cfg
    exit_leaks = (
        _leaks_at(cfg, cfg.exit, out_states, exc_states) if check_exit else {}
    )
    raise_leaks = _leaks_at(cfg, cfg.raise_exit, out_states, exc_states)
    rule = RULES_BY_ID["REPRO601"]
    findings: List[Finding] = []
    for key in sorted(set(exit_leaks) | set(raise_leaks)):
        name, (acquire_line, callee) = key
        if key in exit_leaks:
            how = (
                f"reaches the function exit (line {exit_leaks[key]}) "
                f"without close/unlink/transfer"
            )
            line = exit_leaks[key]
        else:
            how = (
                f"may escape on the exception path from line "
                f"{raise_leaks[key]} before any release"
            )
            line = raise_leaks[key]
        findings.append(
            Finding(
                rule_id="REPRO601",
                severity=rule.severity,
                path=path,
                line=acquire_line,
                column=0,
                message=(
                    f"resource {name!r} acquired from {callee}() at line "
                    f"{acquire_line} {how}"
                ),
            )
        )
        del line
    return findings


# -- fork-safety (REPRO602) ----------------------------------------------


def _captured_names(call: ast.Call) -> Set[str]:
    """Names snapshotted into workers by a pool construction."""
    name = _call_name(call)
    captured: Set[str] = set()
    if name == "Pool":
        for kw in call.keywords:
            if kw.arg == "initargs" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                for elt in kw.value.elts:
                    if isinstance(elt, ast.Name):
                        captured.add(elt.id)
    elif name == "WorkerPool":
        payload = None
        if len(call.args) > 1:
            payload = call.args[1]
        for kw in call.keywords:
            if kw.arg == "payload":
                payload = kw.value
        if isinstance(payload, ast.Name):
            captured.add(payload.id)
    return captured


def _mutations(stmt: ast.stmt, captured: Set[str]) -> List[Tuple[str, int]]:
    out: List[Tuple[str, int]] = []
    if isinstance(stmt, ast.AugAssign):
        target = stmt.target
        if isinstance(target, ast.Name) and target.id in captured:
            out.append((target.id, stmt.lineno))
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            if isinstance(base, ast.Name) and base.id in captured:
                out.append((base.id, stmt.lineno))
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                base = target.value
                if isinstance(base, ast.Name) and base.id in captured:
                    out.append((base.id, stmt.lineno))
    for call in _stmt_calls(stmt):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in captured
        ):
            out.append((func.value.id, call.lineno))
    return out


def _fork_findings(path: str, cfg: CFG) -> List[Finding]:
    rule = RULES_BY_ID["REPRO602"]
    findings: List[Finding] = []
    for node in cfg.nodes:
        stmt = node.stmt
        if stmt is None or not isinstance(stmt, ast.stmt):
            continue
        if node.label.startswith("with-exit"):
            continue
        for call in _stmt_calls(stmt):
            if _call_name(call) not in _FORK_POOLS:
                continue
            captured = _captured_names(call)
            if not captured:
                continue
            # forward reachability from the creation node
            reachable: Set[int] = set()
            stack = [succ for succ, _ in cfg.succs(node.nid)]
            while stack:
                current = stack.pop()
                if current in reachable:
                    continue
                reachable.add(current)
                stack.extend(succ for succ, _ in cfg.succs(current))
            seen: Set[Tuple[str, int]] = set()
            for nid in sorted(reachable):
                later = cfg.node(nid).stmt
                if later is None or not isinstance(later, ast.stmt):
                    continue
                if cfg.node(nid).label.startswith("with-exit"):
                    continue
                for name, line in _mutations(later, captured):
                    if (name, line) in seen:
                        continue
                    seen.add((name, line))
                    findings.append(
                        Finding(
                            rule_id="REPRO602",
                            severity=rule.severity,
                            path=path,
                            line=line,
                            column=0,
                            message=(
                                f"{name!r} is captured by the fork "
                                f"initializer at line {call.lineno} but "
                                f"mutated at line {line} after the fork; "
                                f"workers keep the pre-fork snapshot"
                            ),
                        )
                    )
    return findings


# -- entry points ---------------------------------------------------------


def resource_summary(
    info: FunctionInfo, summaries: SummaryMap
) -> Optional[Union[str, Tuple[int, ...]]]:
    """Which return-value positions carry an unreleased resource."""
    ownership = _Ownership(info.path, info.node.body, summaries)
    in_states, _out, _exc = ownership.run()
    result: Optional[Union[str, Tuple[int, ...]]] = None
    indices: Set[int] = set()
    for node in ownership.cfg.nodes:
        stmt = node.stmt
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        state = in_states.get(node.nid) or {}
        value = stmt.value
        if isinstance(value, ast.Name) and value.id in state:
            result = "all"
        elif isinstance(value, (ast.Tuple, ast.List)):
            for index, elt in enumerate(value.elts):
                if isinstance(elt, ast.Name) and elt.id in state:
                    indices.add(index)
    if result == "all":
        return "all"
    if indices:
        return tuple(sorted(indices))
    return None


def report_module(
    path: str,
    tree: ast.Module,
    summaries: SummaryMap,
) -> List[Finding]:
    """REPRO601/602 findings for one module (top level + functions)."""
    findings: List[Finding] = []

    def analyze(body: Sequence[ast.stmt], check_exit: bool) -> None:
        ownership = _Ownership(path, list(body), summaries)
        _in, out_states, exc_states = ownership.run()
        findings.extend(
            _leak_findings(path, ownership, out_states, exc_states, check_exit)
        )
        findings.extend(_fork_findings(path, ownership.cfg))

    # module top level: exception-path leaks only (globals are
    # program-lifetime; the atexit sweep owns them)
    analyze(tree.body, check_exit=False)

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analyze(child.body, check_exit=True)
                walk(child)
            elif isinstance(child, ast.ClassDef):
                walk(child)

    walk(tree)
    return findings
