"""Project-wide call graph and per-function summaries.

Call resolution is *name-based*, deliberately matching the idiom of
:mod:`repro.lint.project`: a call ``x.f(...)`` resolves to every
function named ``f`` in the linted file set, and their summaries are
joined.  That needs no type checker, is deterministic, and a rare
over-approximation is what waivers are for.

A :class:`FunctionSummary` is everything a call site needs to know:

* ``param_to_return`` — parameter indices whose taint flows into the
  return value (``def ident(x): return x`` → ``(0,)``);
* ``intrinsic_return`` — taints the function *generates* that reach
  its return value (``def stamp(): return time.time()`` → wall-clock);
* ``param_sinks`` — parameters that reach a sink *inside* the callee
  (``def tot(xs): return sum(xs)`` → param 0 reaches an
  order-sensitive float fold), so the caller's tainted argument is
  reported at the call site with the full chain;
* ``returns_set`` — the return value is set-typed, so iterating it at
  a call site is an order source;
* ``resource_indices`` — the return value carries an acquired-but-
  unreleased resource (``"all"``, or tuple-element indices), so the
  caller inherits the release obligation.

Summaries are computed by running the intraprocedural analyses with
symbolic parameter taints, iterated over the whole project until a
fixpoint (joins are monotone unions, so a handful of rounds settles
even mutually recursive call chains).  Functions are processed in
sorted ``(path, qualname)`` order — the result is independent of file
discovery order and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.lint.dataflow.domain import EMPTY, TaintSet
from repro.lint.project import ProjectContext, annotation_is_set

__all__ = [
    "FunctionInfo",
    "FunctionSummary",
    "SummaryMap",
    "collect_functions",
    "build_summaries",
]

#: Maximum whole-project summary rounds; unions are monotone over a
#: finite lattice so this is a backstop, not a tuning knob.
_MAX_ROUNDS = 5


@dataclass
class FunctionInfo:
    """One function/method definition found in the linted file set."""

    path: str
    qualname: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def param_names(self) -> Tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return tuple(names)

    @property
    def sort_key(self) -> Tuple[str, str]:
        return (self.path, self.qualname)


@dataclass(frozen=True)
class FunctionSummary:
    """What a call to this (bare) name does to taint and resources."""

    param_to_return: Tuple[int, ...] = ()
    intrinsic_return: TaintSet = EMPTY
    #: ``(param_index, rule_id, order_only, sink_description)``
    param_sinks: Tuple[Tuple[int, str, bool, str], ...] = ()
    returns_set: bool = False
    #: ``None`` (no resource), ``"all"`` or tuple-element indices
    resource_indices: Optional[Union[str, Tuple[int, ...]]] = None

    def join(self, other: "FunctionSummary") -> "FunctionSummary":
        resource: Optional[Union[str, Tuple[int, ...]]]
        if self.resource_indices == "all" or other.resource_indices == "all":
            resource = "all"
        elif self.resource_indices is None:
            resource = other.resource_indices
        elif other.resource_indices is None:
            resource = self.resource_indices
        else:
            resource = tuple(
                sorted(set(self.resource_indices) | set(other.resource_indices))
            )
        return FunctionSummary(
            param_to_return=tuple(
                sorted(set(self.param_to_return) | set(other.param_to_return))
            ),
            intrinsic_return=self.intrinsic_return.union(other.intrinsic_return),
            param_sinks=tuple(
                sorted(set(self.param_sinks) | set(other.param_sinks))
            ),
            returns_set=self.returns_set or other.returns_set,
            resource_indices=resource,
        )

    def same_shape(self, other: "FunctionSummary") -> bool:
        """Convergence test: everything except taint chains."""
        return (
            self.param_to_return == other.param_to_return
            and self.intrinsic_return.keys() == other.intrinsic_return.keys()
            and self.param_sinks == other.param_sinks
            and self.returns_set == other.returns_set
            and self.resource_indices == other.resource_indices
        )


@dataclass
class SummaryMap:
    """Joined summaries keyed by bare function name."""

    by_name: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: bare names annotated (or inferred) to return set-typed values
    set_returning: frozenset = frozenset()

    def lookup(self, name: str) -> Optional[FunctionSummary]:
        return self.by_name.get(name)

    def returns_set(self, name: str) -> bool:
        if name in self.set_returning:
            return True
        summary = self.by_name.get(name)
        return bool(summary and summary.returns_set)


def collect_functions(trees: Dict[str, ast.Module]) -> List[FunctionInfo]:
    """Every function/method definition, in deterministic order."""
    out: List[FunctionInfo] = []

    def walk(path: str, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append(FunctionInfo(path=path, qualname=qual, node=child))
                walk(path, child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                walk(path, child, f"{prefix}{child.name}.")

    for path in sorted(trees):
        walk(path, trees[path], "")
    out.sort(key=lambda info: info.sort_key)
    return out


def _returns_set_annotation(info: FunctionInfo) -> bool:
    node = info.node
    return node.returns is not None and annotation_is_set(node.returns)


def build_summaries(
    functions: List[FunctionInfo],
    project: ProjectContext,
    summarize,
) -> SummaryMap:
    """Iterate ``summarize(info, summaries)`` to a project fixpoint.

    ``summarize`` is injected (it lives in :mod:`.taint`, which imports
    this module) and must be a pure function of its inputs.
    """
    set_returning = frozenset(project.set_returning) | frozenset(
        info.name for info in functions if _returns_set_annotation(info)
    )
    summaries = SummaryMap(set_returning=set_returning)
    for _ in range(_MAX_ROUNDS):
        changed = False
        fresh: Dict[str, FunctionSummary] = {}
        for info in functions:
            summary = summarize(info, summaries)
            if info.name in fresh:
                fresh[info.name] = fresh[info.name].join(summary)
            else:
                fresh[info.name] = summary
        for name in sorted(fresh):
            old = summaries.by_name.get(name)
            if old is None or not old.same_shape(fresh[name]):
                changed = True
            summaries.by_name[name] = (
                fresh[name] if old is None else old.join(fresh[name])
            )
        if not changed:
            break
    return summaries
