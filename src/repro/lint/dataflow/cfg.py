"""Statement-granular control-flow graphs over Python ``ast``.

One :class:`CFG` per function body (or module top level).  Nodes are
individual statements plus a handful of synthetic nodes (``entry``,
``exit``, ``raise``, exception dispatchers, ``finally`` copies,
``with``-exit nodes); edges carry a kind so the analyses and the
golden tests can tell normal flow from exceptional flow.

Design choices, all in service of the ownership must-analysis:

* **Exception edges** — a statement that may raise (it contains a
  call, a ``raise`` or an ``assert``) gets an ``except`` edge to the
  innermost exception dispatcher; the dispatcher fans out to every
  handler of the enclosing ``try`` *and* to the propagation path
  (through the ``finally``'s exceptional copy when there is one, then
  outward, ultimately to the synthetic ``raise`` node).  Attribute and
  subscript errors are deliberately not modeled — calls dominate the
  raising surface and modeling every load would drown the leak check
  in edges.
* **``finally`` duplication** — the ``finally`` suite is built twice:
  a *normal* copy on the fall-through path and an *exceptional* copy
  on the propagation path, exactly as CPython compiles it.  A release
  in a ``finally`` therefore covers both the normal and the
  exceptional exit, and a ``finally`` without the release covers
  neither.
* **Jump routing** — ``return`` / ``break`` / ``continue`` flow
  through every pending cleanup (``finally`` normal copy,
  ``with``-exit) between the jump and its target, so ``with pool:
  return pool.map(...)`` correctly releases the pool on the return
  path.  The cleanup chain is shared with the fall-through path; the
  merge loses a little precision (flow past a cleanup reaches both the
  jump target and the fall-through successor) which only ever *adds*
  paths — safe for a may-leak analysis.
* **``with``-exit nodes** — a synthetic node per ``with`` statement
  marks where ``__exit__`` runs; the ownership analysis treats it as a
  release of the context-managed names on both the normal and the
  exceptional path.

The graph is deterministic by construction: node ids are allocated in
build order (a pure function of the AST), successor lists are sorted,
and :meth:`CFG.render` emits a canonical text form the golden tests
pin down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "may_raise"]

#: Edge kinds, in the order the renderer prints them.
EDGE_KINDS = ("next", "true", "false", "loop", "break", "continue",
              "except", "cleanup", "return")


@dataclass
class CFGNode:
    """One CFG node: a statement or a synthetic control point."""

    nid: int
    label: str
    stmt: Optional[ast.stmt] = None
    #: line the node anchors diagnostics to (0 for pure synthetics)
    line: int = 0


class CFG:
    """The control-flow graph of one statement suite."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self._succs: Dict[int, Set[Tuple[int, str]]] = {}
        self._preds: Dict[int, Set[Tuple[int, str]]] = {}
        self.entry = self._add("entry")
        self.exit = self._add("exit")
        self.raise_exit = self._add("raise")

    # -- construction ---------------------------------------------------

    def _add(self, label: str, stmt: Optional[ast.stmt] = None) -> int:
        nid = len(self.nodes)
        line = getattr(stmt, "lineno", 0) if stmt is not None else 0
        self.nodes.append(CFGNode(nid=nid, label=label, stmt=stmt, line=line))
        self._succs[nid] = set()
        self._preds[nid] = set()
        return nid

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self._succs[src].add((dst, kind))
        self._preds[dst].add((src, kind))

    # -- queries --------------------------------------------------------

    def succs(self, nid: int) -> List[Tuple[int, str]]:
        return sorted(self._succs[nid])

    def preds(self, nid: int) -> List[Tuple[int, str]]:
        return sorted(self._preds[nid])

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def rpo(self) -> List[int]:
        """Reverse postorder from ``entry`` (deterministic iteration
        schedule for the forward fixpoints); unreachable nodes are
        appended in id order so dead code is still analyzed."""
        seen: Set[int] = set()
        result: List[int] = []

        def visit(nid: int) -> None:
            order: List[int] = []
            stack = [(nid, iter(self.succs(nid)))]
            seen.add(nid)
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ, _kind in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs(succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()
            # reverse per root, so entry's component stays in front of
            # any unreachable islands appended after it
            result.extend(reversed(order))

        visit(self.entry)
        for extra in range(len(self.nodes)):
            if extra not in seen:
                visit(extra)
        return result

    def render(self) -> str:
        """Canonical text dump for the golden tests."""
        lines = []
        for node in self.nodes:
            succs = ", ".join(
                f"{kind}->{dst}" for dst, kind in sorted(
                    self._succs[node.nid],
                    key=lambda pair: (EDGE_KINDS.index(pair[1]), pair[0]),
                )
            )
            lines.append(f"[{node.nid}] {node.label}: {succs}" if succs
                         else f"[{node.nid}] {node.label}")
        return "\n".join(lines) + "\n"


def _header_exprs(stmt: ast.stmt) -> Optional[List[ast.AST]]:
    """For compound statements: the expressions their *header* evaluates.

    The suite's statements get their own CFG nodes and edges, so a
    ``with``/``if``/``for`` header node must only raise if its own
    condition/iterable/context expression can — not because somewhere
    in its body a call appears.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return []
    return None


def may_raise(stmt: ast.stmt) -> bool:
    """Whether a statement can transfer control to an exception edge.

    Calls, ``raise`` and ``assert`` cover the raising surface the
    ownership analysis cares about; pure loads and stores are treated
    as non-raising to keep the exception subgraph focused.  For
    compound statements only the header expressions count (their
    suites are separate nodes with their own edges).
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    headers = _header_exprs(stmt)
    roots: List[ast.AST] = [stmt] if headers is None else list(headers)
    for root in roots:
        for sub in ast.walk(root):
            if isinstance(sub, (ast.Call, ast.Await)):
                return True
    return False


def _catches_all(handler: ast.ExceptHandler) -> bool:
    """``except:`` / ``except Exception`` / ``except BaseException``."""
    if handler.type is None:
        return True
    node = handler.type
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name in {"Exception", "BaseException"}


@dataclass
class _Cleanup:
    """One pending cleanup a jump must traverse (finally / with-exit)."""

    entry: int
    post: int


@dataclass
class _Loop:
    header: int
    after: int
    #: cleanup-stack depth at loop entry — break/continue unwind to here
    depth: int
    #: break nodes with the cleanup chain pending at the break site
    #: (snapshotted there: by the time the loop's after-node exists the
    #: enclosing try/with frames have already been popped)
    breaks: List[Tuple[int, List["_Cleanup"]]] = field(default_factory=list)


class _Builder:
    """Structured, recursive CFG construction for one suite."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._cleanups: List[_Cleanup] = []
        self._loops: List[_Loop] = []
        #: stack of exception-edge targets; bottom is ``raise_exit``
        self._exc: List[int] = [cfg.raise_exit]

    # -- jump routing ---------------------------------------------------

    def _route_jump(self, src: int, target: int, kind: str, depth: int) -> None:
        """Connect ``src`` to ``target`` through cleanups above ``depth``."""
        self._route_through(src, target, kind, self._cleanups[depth:])

    def _route_through(self, src: int, target: int, kind: str,
                       pending: List[_Cleanup]) -> None:
        current, current_kind = src, kind
        for frame in reversed(pending):
            self.cfg._edge(current, frame.entry, current_kind)
            current, current_kind = frame.post, "cleanup"
        self.cfg._edge(current, target, current_kind)

    # -- suite / statement dispatch ------------------------------------

    def build_suite(self, stmts: Sequence[ast.stmt], heads: List[Tuple[int, str]]
                    ) -> List[Tuple[int, str]]:
        """Build a statement list; returns the dangling exits."""
        frontier = list(heads)
        for stmt in stmts:
            if not frontier:
                # unreachable tail (after return/raise/break): still
                # build it so its findings exist, entered from nowhere
                frontier = []
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def _connect(self, frontier: List[Tuple[int, str]], nid: int) -> None:
        for src, kind in frontier:
            self.cfg._edge(src, nid, kind)

    def _stmt_node(self, stmt: ast.stmt, tag: str) -> int:
        return self.cfg._add(f"{tag}@{stmt.lineno}", stmt)

    def build_stmt(self, stmt: ast.stmt, frontier: List[Tuple[int, str]]
                   ) -> List[Tuple[int, str]]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            nid = self._stmt_node(stmt, "if")
            self._connect(frontier, nid)
            self._exc_edge(stmt, nid)
            body_exits = self.build_suite(stmt.body, [(nid, "true")])
            if stmt.orelse:
                else_exits = self.build_suite(stmt.orelse, [(nid, "false")])
            else:
                else_exits = [(nid, "false")]
            return body_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, frontier)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, "return")
            self._connect(frontier, nid)
            self._exc_edge(stmt, nid)
            self._route_jump(nid, cfg.exit, "return", 0)
            return []
        if isinstance(stmt, ast.Raise):
            nid = self._stmt_node(stmt, "raise")
            self._connect(frontier, nid)
            cfg._edge(nid, self._exc[-1], "except")
            return []
        if isinstance(stmt, ast.Break):
            nid = self._stmt_node(stmt, "break")
            self._connect(frontier, nid)
            loop = self._loops[-1]
            loop.breaks.append((nid, list(self._cleanups[loop.depth:])))
            return []
        if isinstance(stmt, ast.Continue):
            nid = self._stmt_node(stmt, "continue")
            self._connect(frontier, nid)
            loop = self._loops[-1]
            self._route_jump(nid, loop.header, "continue", loop.depth)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # a nested definition is one (non-raising) binding statement
            # here; its body gets its own CFG from the engine
            nid = self._stmt_node(stmt, "def")
            self._connect(frontier, nid)
            return [(nid, "next")]
        # simple statement (assign, expr, import, assert, pass, ...)
        nid = self._stmt_node(stmt, type(stmt).__name__.lower())
        self._connect(frontier, nid)
        self._exc_edge(stmt, nid)
        return [(nid, "next")]

    def _exc_edge(self, stmt: ast.stmt, nid: int) -> None:
        if may_raise(stmt):
            self.cfg._edge(nid, self._exc[-1], "except")

    # -- compound statements -------------------------------------------

    def _build_loop(self, stmt, frontier: List[Tuple[int, str]]
                    ) -> List[Tuple[int, str]]:
        cfg = self.cfg
        tag = "while" if isinstance(stmt, ast.While) else "for"
        header = self._stmt_node(stmt, tag)
        self._connect(frontier, header)
        self._exc_edge(stmt, header)
        loop = _Loop(header=header, after=-1, depth=len(self._cleanups))
        self._loops.append(loop)
        body_exits = self.build_suite(stmt.body, [(header, "true")])
        for src, kind in body_exits:
            cfg._edge(src, header, "loop" if kind == "next" else kind)
        self._loops.pop()
        if stmt.orelse:
            # while/else, for/else: the else suite runs on normal loop
            # exhaustion, and is skipped by break
            else_exits = self.build_suite(stmt.orelse, [(header, "false")])
        else:
            else_exits = [(header, "false")]
        exits = list(else_exits)
        if loop.breaks:
            # one shared after-node collects every break, each routed
            # through the cleanup chain that was live at its site
            after = cfg._add(f"loop-after@{stmt.lineno}")
            for nid, pending in loop.breaks:
                self._route_through(nid, after, "break", pending)
            exits.append((after, "next"))
        return exits

    def _build_with(self, stmt, frontier: List[Tuple[int, str]]
                    ) -> List[Tuple[int, str]]:
        cfg = self.cfg
        enter = self._stmt_node(stmt, "with")
        self._connect(frontier, enter)
        self._exc_edge(stmt, enter)
        wexit = cfg._add(f"with-exit@{stmt.lineno}", stmt)
        wexit_exc = cfg._add(f"with-exit-exc@{stmt.lineno}", stmt)
        cfg._edge(wexit_exc, self._exc[-1], "except")
        self._exc.append(wexit_exc)
        self._cleanups.append(_Cleanup(entry=wexit, post=wexit))
        body_exits = self.build_suite(stmt.body, [(enter, "next")])
        self._cleanups.pop()
        self._exc.pop()
        self._connect(body_exits, wexit)
        return [(wexit, "next")]

    def _build_try(self, stmt, frontier: List[Tuple[int, str]]
                   ) -> List[Tuple[int, str]]:
        cfg = self.cfg
        line = stmt.lineno
        outer_exc = self._exc[-1]
        has_finally = bool(stmt.finalbody)

        # exceptional-finally copy: propagation path out of this try
        if has_finally:
            fin_exc_entry = cfg._add(f"finally-exc@{line}", stmt)
            fin_exc_exits = self.build_suite(
                stmt.finalbody, [(fin_exc_entry, "next")]
            )
            for src, kind in fin_exc_exits:
                cfg._edge(src, outer_exc, "except" if kind == "next" else kind)
            propagate = fin_exc_entry
        else:
            propagate = outer_exc

        dispatch = cfg._add(f"except-dispatch@{line}", stmt)
        handler_heads: List[int] = []
        for handler in stmt.handlers:
            head = cfg._add(f"handler@{handler.lineno}", handler)
            cfg._edge(dispatch, head, "except")
            handler_heads.append(head)
        # the raised exception may match no handler: propagate — unless
        # some handler catches everything (``except:``, ``except
        # Exception``); BaseException escapes mid-cleanup are out of
        # scope for the leak analysis
        if not any(_catches_all(handler) for handler in stmt.handlers):
            cfg._edge(dispatch, propagate, "except")

        # normal-finally copy (fall-through, returns, handled exits)
        if has_finally:
            fin_entry = cfg._add(f"finally@{line}", stmt)
            fin_exits = self.build_suite(stmt.finalbody, [(fin_entry, "next")])
            post_nodes = [src for src, _ in fin_exits]
            post = post_nodes[0] if post_nodes else fin_entry
            self._cleanups.append(_Cleanup(entry=fin_entry, post=post))
        else:
            fin_entry = -1
            fin_exits = []

        self._exc.append(dispatch)
        body_exits = self.build_suite(stmt.body, frontier)
        self._exc.pop()
        if stmt.orelse:
            body_exits = self.build_suite(stmt.orelse, body_exits)

        # handlers run with the *outer* exception context (a raise in a
        # handler propagates out, through the exceptional finally)
        handled_exits: List[Tuple[int, str]] = []
        for handler, head in zip(stmt.handlers, handler_heads):
            self._exc.append(propagate)
            handled_exits.extend(self.build_suite(handler.body, [(head, "next")]))
            self._exc.pop()

        if has_finally:
            self._cleanups.pop()
            self._connect(body_exits + handled_exits, fin_entry)
            return fin_exits if fin_exits else [(fin_entry, "next")]
        return body_exits + handled_exits


def build_cfg(stmts: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of one statement suite (function body or module)."""
    cfg = CFG()
    builder = _Builder(cfg)
    exits = builder.build_suite(list(stmts), [(cfg.entry, "next")])
    for src, kind in exits:
        cfg._edge(src, cfg.exit, kind)
    return cfg
