"""Nondeterminism taint analysis (REPRO501–REPRO504).

A forward worklist fixpoint over the :mod:`.cfg` graph of every
function (and module top level), tracking which local names carry
values derived from ambient nondeterminism:

=========== =========================================================
kind        source
=========== =========================================================
set-order   iterating a set/frozenset (directly, via ``list(s)`` /
            ``iter(s)`` / ``s.pop()``, or via any call the project
            knows returns a set) without a ``sorted()``
dict-order  iterating ``os.environ`` / ``vars()`` / ``__dict__``
wall-clock  ``time.time()``, ``datetime.now()``, …
rng         the process-global ``random`` module
hash        builtin ``hash()``
env         ``os.getenv`` / ``os.environ`` reads
=========== =========================================================

``sorted()``, ``min``/``max``/``len``/``any``/``all`` and
``math.fsum`` erase *order* kinds (their result does not depend on
iteration order); converting to a ``set``/``frozenset`` erases order
too (it is re-introduced only when that set is iterated again).  Value
kinds (wall-clock, rng, hash, env) survive everything.

A finding is emitted only when taint **reaches a sink**:

* REPRO501 — an order-sensitive float fold: builtin ``sum()`` over a
  non-integer element stream, or a ``+=`` float-reduction loop;
* REPRO502 — digest/cache-key construction (``stable_digest``, any
  ``*_digest``/``*_fingerprint`` call, ``hasher.update``);
* REPRO503 — JSON/artefact emission (``json.dump(s)``, ``write_text``);
* REPRO504 — ``CostLedger`` deterministic counters (``add_work``,
  ``add_port_work``, ``add_sweep``) — the byte-identity contract of
  ``docs/OBSERVABILITY.md`` covers exactly these.

Interprocedural flow rides the :mod:`.summaries` fixpoint: parameter
taint entering a callee that sinks it is reported **at the call
site**, with the chain spelling the route (``source → passed to f() →
sink``); taints a callee generates surface at its callers through
``intrinsic_return``.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.lint.dataflow.domain import (
    EMPTY,
    ORDER_KINDS,
    Taint,
    TaintSet,
    TaintState,
)
from repro.lint.dataflow.summaries import FunctionInfo, SummaryMap
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext
from repro.lint.rules import (
    RULES_BY_ID,
    _GLOBAL_RANDOM_FNS,
    _ScopeTypes,
    _WALL_CLOCK_ATTRS,
    _call_name,
    _is_int_like,
)

__all__ = ["summarize_function", "report_module", "TAINT_RULE_IDS"]

TAINT_RULE_IDS = ("REPRO501", "REPRO502", "REPRO503", "REPRO504")

#: All kinds that make a sink finding (``param`` is symbolic).
_VALUE_KINDS = frozenset(
    {"set-order", "dict-order", "wall-clock", "rng", "hash", "env"}
)

#: Sink filters keep the symbolic ``param`` kind so summary mode can
#: record "parameter N reaches this sink"; report mode strips it.
_SINKABLE = _VALUE_KINDS | {"param"}
_ORDER_SINKABLE = ORDER_KINDS | {"param"}

#: Wrappers whose output order follows their input order.
_TRANSPARENT = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Order-erasing consumers: their value is independent of input order.
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "len", "any", "all", "fsum"})

#: Known hasher constructors for ``hasher.update`` sink detection.
_HASHER_CTORS = frozenset(
    {"sha1", "sha224", "sha256", "sha384", "sha512", "md5", "blake2b", "blake2s"}
)

#: CostLedger deterministic-section recorders (REPRO504 sinks); the
#: cache/runtime channels are explicitly non-deterministic and exempt.
_LEDGER_SINKS = frozenset({"add_work", "add_port_work", "add_sweep"})

_MAX_PASSES = 40

#: ``sink(call_node, rule_id, order_only, desc, taints)``
SinkFn = Callable[[ast.AST, str, bool, str, TaintSet], None]


def _short(path: str) -> str:
    """Trailing two path components — keeps chains readable."""
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-2:]) if len(parts) > 1 else path


def _digest_callee(name: str) -> bool:
    return (
        name == "stable_digest"
        or name.endswith("_digest")
        or name.endswith("_fingerprint")
        or name == "fingerprint"
    )


class _Analysis:
    """One function's (or the module body's) taint fixpoint."""

    def __init__(
        self,
        path: str,
        body: Sequence[ast.stmt],
        project: ProjectContext,
        summaries: SummaryMap,
        sink: Optional[SinkFn],
        params: Sequence[str] = (),
        param_taints: bool = False,
    ) -> None:
        self.path = path
        self.summaries = summaries
        self.sink = sink
        self.scope = _ScopeTypes(project)
        self.scope.learn_assignments(list(body))
        self._learn_summary_sets(body)
        self.params = tuple(params)
        self.param_taints = param_taints
        self.hashers = self._find_hashers(body)
        self.cfg = build_cfg(body)
        self.return_taints: TaintSet = EMPTY
        self.returns_set_value = False

    # -- prescans -------------------------------------------------------

    def _learn_summary_sets(self, body: Sequence[ast.stmt]) -> None:
        """Names assigned from *inferred* set-returning calls.

        ``_ScopeTypes.learn_assignments`` only knows annotation-based
        set returns; the summary fixpoint also infers them from return
        expressions, so fold those into the scope (two passes for one
        level of name-to-name indirection, matching the scope's own
        idiom).
        """
        assigns = [
            stmt
            for outer in body
            for stmt in ast.walk(outer)
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ]
        for _ in range(2):
            for stmt in assigns:
                if self._is_set_expr(stmt.value):
                    self.scope.set_names.add(stmt.targets[0].id)

    @staticmethod
    def _find_hashers(body: Sequence[ast.stmt]) -> frozenset:
        names = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)
                    and _call_name(sub.value) in _HASHER_CTORS
                ):
                    names.add(sub.targets[0].id)
        return frozenset(names)

    # -- expression evaluation -----------------------------------------

    def _is_set_expr(self, expr: ast.AST) -> bool:
        if self.scope.is_set_expr(expr):
            return True
        return isinstance(expr, ast.Call) and self.summaries.returns_set(
            _call_name(expr)
        )

    def _source(self, kind: str, node: ast.AST, what: str) -> TaintSet:
        origin = f"{what} at {_short(self.path)}:{getattr(node, 'lineno', 0)}"
        return TaintSet([Taint(kind, origin)])

    def eval(self, expr: Optional[ast.AST], state: TaintState) -> TaintSet:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            return state.get(expr.id)
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return self._eval_children(expr, state).drop_order()
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.DictComp)):
            return self._eval_comp(expr, state)
        if isinstance(expr, ast.Attribute):
            base = self.eval(expr.value, state)
            if expr.attr == "environ":
                base = base.union(self._source("env", expr, "os.environ read"))
            return base
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value, state).union(
                self.eval(expr.slice, state)
            )
        return self._eval_children(expr, state)

    def _eval_children(self, expr: ast.AST, state: TaintState) -> TaintSet:
        out = EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                out = out.union(self.eval(value, state))
        return out

    def _eval_comp(self, expr, state: TaintState) -> TaintSet:
        overlay = state.copy()
        iter_taint = EMPTY
        for gen in expr.generators:
            produced = self.iteration_taint(gen.iter, overlay)
            iter_taint = iter_taint.union(produced)
            self._bind_target(gen.target, produced, overlay)
        if isinstance(expr, ast.DictComp):
            element = self.eval(expr.key, overlay).union(
                self.eval(expr.value, overlay)
            )
        else:
            element = self.eval(expr.elt, overlay)
        return iter_taint.union(element)

    def iteration_taint(self, iter_expr: ast.AST, state: TaintState) -> TaintSet:
        """Taint produced by iterating ``iter_expr`` (order sources)."""
        expr = iter_expr
        while isinstance(expr, ast.Call) and _call_name(expr) in _TRANSPARENT:
            if not expr.args:
                return EMPTY
            expr = expr.args[0]
        if isinstance(expr, ast.Call) and _call_name(expr) in _ORDER_SANITIZERS:
            return self.eval(expr, state).drop_order()
        taints = self.eval(expr, state)
        if self._is_set_expr(expr):
            what = "set iteration"
            if isinstance(expr, ast.Call):
                what = f"{_call_name(expr)}() set-typed result iteration"
            taints = taints.union(self._source("set-order", iter_expr, what))
        if isinstance(expr, ast.Attribute) and expr.attr == "environ":
            taints = taints.union(
                self._source("dict-order", iter_expr, "os.environ iteration")
            )
        if isinstance(expr, ast.Call) and _call_name(expr) in {"vars", "globals"}:
            taints = taints.union(
                self._source("dict-order", iter_expr, f"{_call_name(expr)}() iteration")
            )
        return taints

    def _eval_call(self, node: ast.Call, state: TaintState) -> TaintSet:
        name = _call_name(node)
        func = node.func

        # ambient sources ------------------------------------------------
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if base_name is not None and (base_name, func.attr) in _WALL_CLOCK_ATTRS:
                return self._source("wall-clock", node, f"{base_name}.{func.attr}()")
            if base_name == "random" and func.attr in _GLOBAL_RANDOM_FNS:
                return self._source("rng", node, f"random.{func.attr}()")
            if func.attr == "pop" and self._is_set_expr(func.value):
                return self.eval(func.value, state).union(
                    self._source("set-order", node, "set.pop()")
                )
            if func.attr in {"getenv", "getenvb"}:
                return self._source("env", node, f"os.{func.attr}()")
        if isinstance(func, ast.Name):
            if name == "hash":
                return self._source("hash", node, "hash()")
            if name == "getenv":
                return self._source("env", node, "getenv()")

        # sanitizers / shape changers ------------------------------------
        if name in _ORDER_SANITIZERS:
            return self._eval_children(node, state).drop_order()
        if name in {"set", "frozenset"}:
            return self._eval_children(node, state).drop_order()
        if name in _TRANSPARENT:
            # materializing an iterable freezes its (possibly
            # nondeterministic) order into the result
            if node.args:
                return self.iteration_taint(node.args[0], state)
            return EMPTY

        # project summaries ----------------------------------------------
        summary = self.summaries.lookup(name)
        if summary is not None:
            hop = f"through {name}() at {_short(self.path)}:{node.lineno}"
            result = summary.intrinsic_return.extend(hop)
            arg_taints = self._arguments(node, state)
            for index in summary.param_to_return:
                if index in arg_taints:
                    result = result.union(arg_taints[index].extend(hop))
            if self.sink is not None:
                for index, rule_id, order_only, desc in summary.param_sinks:
                    taints = arg_taints.get(index, EMPTY)
                    if order_only and index < len(node.args) and not isinstance(
                        node.args[index], ast.Starred
                    ):
                        # the callee iterates this parameter into an
                        # order-sensitive sink: a set-typed argument is
                        # an order source even when otherwise untainted
                        taints = taints.union(self._order_use(node.args[index]))
                    taints = taints.only(_ORDER_SINKABLE) if order_only else taints
                    if taints:
                        passed = taints.extend(
                            f"passed to {name}() at "
                            f"{_short(self.path)}:{node.lineno}"
                        )
                        self.sink(node, rule_id, order_only, desc, passed)
            return result

        # unknown callee: conservative pass-through of argument taint
        return self._eval_children(node, state)

    def _arguments(self, node: ast.Call, state: TaintState) -> Dict[int, TaintSet]:
        out: Dict[int, TaintSet] = {}
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            taints = self.eval(arg, state)
            if taints:
                out[index] = taints
        return out

    def _order_use(self, arg: ast.AST) -> TaintSet:
        """Set-order taint for a set-typed value whose *iteration order*
        the consumer observes (digest serialization, order-sensitive
        folds in a callee).  An untainted set is deterministic as a
        value but not as a sequence, so the source materializes at the
        point where the order is consumed, not where the set is built."""
        if self._is_set_expr(arg):
            return self._source("set-order", arg, "set iteration")
        return EMPTY

    # -- statement transfer --------------------------------------------

    def _bind_target(
        self, target: ast.AST, taints: TaintSet, state: TaintState
    ) -> None:
        if isinstance(target, ast.Name):
            state.set(target.id, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taints, state)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taints, state)
        # attribute / subscript stores: object fields are not tracked

    def transfer(self, node: CFGNode, state: TaintState) -> TaintState:
        stmt = node.stmt
        if stmt is None:
            return state
        out = state.copy()
        if isinstance(stmt, ast.Assign):
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], (ast.Tuple, ast.List))
                and isinstance(stmt.value, (ast.Tuple, ast.List))
                and len(stmt.targets[0].elts) == len(stmt.value.elts)
            ):
                for t_elt, v_elt in zip(stmt.targets[0].elts, stmt.value.elts):
                    self._bind_target(t_elt, self.eval(v_elt, state), out)
            else:
                taints = self.eval(stmt.value, state)
                for target in stmt.targets:
                    self._bind_target(target, taints, out)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_target(stmt.target, self.eval(stmt.value, state), out)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            merged = state.get(stmt.target.id).union(self.eval(stmt.value, state))
            out.set(stmt.target.id, merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(
                stmt.target, self.iteration_taint(stmt.iter, state), out
            )
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars,
                        self.eval(item.context_expr, state),
                        out,
                    )
        return out

    # -- the fixpoint ---------------------------------------------------

    def run(self) -> Dict[int, TaintState]:
        cfg = self.cfg
        order = cfg.rpo()
        entry_state = TaintState()
        if self.param_taints:
            for index, param in enumerate(self.params):
                entry_state.set(
                    param, TaintSet([Taint("param", f"param:{index}")])
                )
        in_states: Dict[int, TaintState] = {cfg.entry: entry_state}
        out_states: Dict[int, TaintState] = {
            cfg.entry: self.transfer(cfg.node(cfg.entry), entry_state)
        }
        for _ in range(_MAX_PASSES):
            changed = False
            for nid in order:
                if nid == cfg.entry:
                    continue
                preds = cfg.preds(nid)
                state = TaintState()
                for pred, _kind in preds:
                    if pred in out_states:
                        state = state.join(out_states[pred])
                if nid == cfg.entry or (not preds and nid == cfg.entry):
                    state = entry_state
                new_out = self.transfer(cfg.node(nid), state)
                old_out = out_states.get(nid)
                if old_out is None or not old_out.same_keys(new_out):
                    changed = True
                in_states[nid] = state
                out_states[nid] = new_out
            if not changed:
                break
        return in_states

    # -- sink pass ------------------------------------------------------

    def check_sinks(self, in_states: Dict[int, TaintState]) -> None:
        """Walk every node's own expressions with its IN state."""
        assert self.sink is not None
        for node in self.cfg.nodes:
            stmt = node.stmt
            if stmt is None or node.label.startswith(
                ("with-exit", "finally", "except-dispatch", "handler")
            ):
                continue
            state = in_states.get(node.nid)
            if state is None:
                state = TaintState()
            for expr in _stmt_exprs(stmt):
                for call in _walk_calls(expr):
                    self._check_call_sinks(call, state)
            if (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.op, ast.Add)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in self.scope.float_zero_names
                and not _is_int_like(stmt.value)
            ):
                taints = self.eval(stmt.value, state).only(_ORDER_SINKABLE)
                if taints:
                    self.sink(
                        stmt,
                        "REPRO501",
                        True,
                        f"float reduction loop on {stmt.target.id!r} "
                        f"({_short(self.path)}:{stmt.lineno})",
                        taints,
                    )

    def _check_call_sinks(self, call: ast.Call, state: TaintState) -> None:
        assert self.sink is not None
        name = _call_name(call)
        where = f"{_short(self.path)}:{call.lineno}"
        if isinstance(call.func, ast.Name) and name == "sum":
            element = call.args[0] if call.args else None
            int_like = (
                element is not None
                and isinstance(
                    element, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                )
                and _is_int_like(element.elt)
            )
            if not int_like:
                taints = self._eval_children(call, state).only(_ORDER_SINKABLE)
                if taints:
                    self.sink(
                        call, "REPRO501", True, f"builtin sum() at {where}", taints
                    )
            return
        if _digest_callee(name):
            taints = self._eval_children(call, state)
            for arg in call.args:
                # digesting a set serializes it in iteration order
                taints = taints.union(self._order_use(arg))
            taints = taints.only(_SINKABLE)
            if taints:
                self.sink(
                    call, "REPRO502", False, f"{name}() digest at {where}", taints
                )
            return
        if (
            name == "update"
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.hashers
        ):
            taints = self._eval_children(call, state)
            for arg in call.args:
                taints = taints.union(self._order_use(arg))
            taints = taints.only(_SINKABLE)
            if taints:
                self.sink(
                    call,
                    "REPRO502",
                    False,
                    f"{call.func.value.id}.update() digest at {where}",
                    taints,
                )
            return
        if name in {"dump", "dumps"} or name == "write_text":
            is_json = isinstance(call.func, ast.Attribute) and (
                isinstance(call.func.value, ast.Name)
                and call.func.value.id == "json"
            )
            if is_json or name == "write_text":
                taints = self._eval_children(call, state)
                for arg in call.args:
                    # emitting a set writes it in iteration order
                    taints = taints.union(self._order_use(arg))
                taints = taints.only(_SINKABLE)
                if taints:
                    self.sink(
                        call,
                        "REPRO503",
                        False,
                        f"{name}() artefact emission at {where}",
                        taints,
                    )
            return
        if name in _LEDGER_SINKS and isinstance(call.func, ast.Attribute):
            taints = self._eval_children(call, state).only(_SINKABLE)
            if taints:
                self.sink(
                    call,
                    "REPRO504",
                    False,
                    f"CostLedger.{name}() deterministic counter at {where}",
                    taints,
                )
            return
        # a project function whose summary records parameter sinks is
        # itself a sink site: evaluating the call dispatches them (the
        # eval path in _eval_call), even when the call is a bare
        # statement rather than an argument of a recognized sink
        summary = self.summaries.lookup(name)
        if summary is not None and summary.param_sinks:
            self.eval(call, state)

    # -- summary extraction ---------------------------------------------

    def collect_returns(self, in_states: Dict[int, TaintState]) -> None:
        for node in self.cfg.nodes:
            stmt = node.stmt
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            state = in_states.get(node.nid) or TaintState()
            self.return_taints = self.return_taints.union(
                self.eval(stmt.value, state)
            )
            if self._is_set_expr(stmt.value):
                self.returns_set_value = True


def _stmt_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated *at* this statement's CFG node."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [e for e in (stmt.test, stmt.msg) if e is not None]
    if isinstance(stmt, ast.Delete):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return []


def _walk_calls(expr: ast.AST) -> List[ast.Call]:
    out = []
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            out.append(sub)
        elif isinstance(sub, (ast.Lambda,)):
            pass  # lambdas' bodies run elsewhere; their calls still walk
    return out


def _seed_scope(analysis: _Analysis, info: FunctionInfo) -> None:
    """Mark set-annotated parameters as set-typed in the scope."""
    args = info.node.args
    from repro.lint.project import annotation_is_set

    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is not None and annotation_is_set(arg.annotation):
            analysis.scope.set_names.add(arg.arg)


def summarize_function(
    info: FunctionInfo,
    summaries: SummaryMap,
    project: ProjectContext,
):
    """One round of summary computation for ``info`` (taint half).

    Returns ``(param_to_return, intrinsic_return, param_sinks,
    returns_set)``; the resource half lives in :mod:`.ownership`.
    """
    param_sinks: List[Tuple[int, str, bool, str]] = []

    def sink(node: ast.AST, rule_id: str, order_only: bool, desc: str,
             taints: TaintSet) -> None:
        for taint in taints:
            if taint.kind == "param":
                index = int(taint.origin.split(":", 1)[1])
                param_sinks.append((index, rule_id, order_only, desc))

    analysis = _Analysis(
        path=info.path,
        body=info.node.body,
        project=project,
        summaries=summaries,
        sink=sink,
        params=info.param_names,
        param_taints=True,
    )
    _seed_scope(analysis, info)
    in_states = analysis.run()
    analysis.check_sinks(in_states)
    analysis.collect_returns(in_states)
    param_to_return = []
    intrinsic = EMPTY
    hop = f"through {info.name}() at {_short(info.path)}:{info.node.lineno}"
    for taint in analysis.return_taints:
        if taint.kind == "param":
            param_to_return.append(int(taint.origin.split(":", 1)[1]))
        else:
            intrinsic = intrinsic.union(TaintSet([taint]))
    return (
        tuple(sorted(set(param_to_return))),
        intrinsic,
        tuple(sorted(set(param_sinks))),
        analysis.returns_set_value,
    )


def _emit(findings: List[Finding], path: str, node: ast.AST, rule_id: str,
          desc: str, taints: TaintSet) -> None:
    taint = taints.first()
    if taint is None:
        return
    rule = RULES_BY_ID[rule_id]
    findings.append(
        Finding(
            rule_id=rule_id,
            severity=rule.severity,
            path=path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
            message=(
                f"nondeterministic value reaches {desc} "
                f"[taint: {taint.render_chain()} -> sink]"
            ),
        )
    )


def report_module(
    path: str,
    tree: ast.Module,
    project: ProjectContext,
    summaries: SummaryMap,
) -> List[Finding]:
    """REPRO5xx findings for one module (top level + every function)."""
    findings: List[Finding] = []

    def sink(node: ast.AST, rule_id: str, order_only: bool, desc: str,
             taints: TaintSet) -> None:
        real = taints.without(frozenset({"param"}))
        if real:
            _emit(findings, path, node, rule_id, desc, real)

    def analyze_body(body, params=(), info: Optional[FunctionInfo] = None) -> None:
        analysis = _Analysis(
            path=path,
            body=body,
            project=project,
            summaries=summaries,
            sink=sink,
            params=params,
        )
        if info is not None:
            _seed_scope(analysis, info)
        in_states = analysis.run()
        analysis.check_sinks(in_states)

    analyze_body(tree.body)

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(path=path, qualname=qual, node=child)
                analyze_body(child.body, info.param_names, info)
                walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")

    walk(tree, "")
    return findings
