"""The abstract domain of the taint analysis: value provenance.

A :class:`Taint` records *why* a value is nondeterministic — its kind
(which ambient source it derives from) and the source location — plus
the hop chain the diagnostic prints (``source → through f() → sink``).

The lattice element is :class:`TaintSet`: a finite map from
``(kind, origin)`` to the *shortest, lexicographically smallest* chain
seen for that source.  Joins are unions with that canonical chain
tie-break, which gives the two properties the engine's contract needs:

* **termination** — the key set per function is finite (one key per
  syntactic source plus the call-summary keys), and a join never
  replaces a chain with a longer or lexicographically larger one, so
  the fixpoint cannot oscillate;
* **determinism** — no step depends on ``dict``/``set`` iteration
  order of hashes, so the findings are byte-identical across
  ``PYTHONHASHSEED`` (enforced by ``tests/lint/test_dataflow_determinism.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

__all__ = [
    "ORDER_KINDS",
    "Taint",
    "TaintSet",
    "EMPTY",
    "TaintState",
]

#: Kinds whose hazard is *iteration order* (erased by ``sorted()`` and
#: by order-insensitive folds); the remaining kinds — ``wall-clock``,
#: ``rng``, ``hash``, ``env``, ``param`` — taint the value itself.
ORDER_KINDS = frozenset({"set-order", "dict-order"})

#: Longest chain kept on a taint; hops beyond this collapse into "…".
_MAX_CHAIN = 6


class Taint:
    """One provenance fact: ``kind`` from ``origin`` via ``chain``."""

    __slots__ = ("kind", "origin", "chain")

    def __init__(self, kind: str, origin: str, chain: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self.origin = origin
        self.chain = chain if chain else (origin,)

    def key(self) -> Tuple[str, str]:
        return (self.kind, self.origin)

    def extend(self, hop: str) -> "Taint":
        """A copy with one more hop appended (bounded length)."""
        chain = self.chain
        if len(chain) >= _MAX_CHAIN:
            chain = chain[: _MAX_CHAIN - 1] + ("…",)
            if chain[-2:] == ("…", "…"):
                return self
        else:
            chain = chain + (hop,)
        return Taint(self.kind, self.origin, chain)

    def render_chain(self) -> str:
        return " -> ".join(self.chain)

    def __repr__(self) -> str:  # debugging only
        return f"Taint({self.kind!r}, {self.origin!r})"


def _better(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
    """The canonical of two chains: shorter wins, then lexicographic."""
    return min(a, b, key=lambda c: (len(c), c))


class TaintSet:
    """Immutable set of taints keyed by ``(kind, origin)``.

    Internally a sorted tuple of ``(key, chain)`` pairs; all
    operations preserve the canonical order so equality, iteration and
    rendering are deterministic.
    """

    __slots__ = ("_entries",)

    def __init__(self, taints: Iterable[Taint] = ()) -> None:
        merged: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for taint in taints:
            key = taint.key()
            if key in merged:
                merged[key] = _better(merged[key], taint.chain)
            else:
                merged[key] = taint.chain
        self._entries: Tuple[Tuple[Tuple[str, str], Tuple[str, ...]], ...] = tuple(
            (key, merged[key]) for key in sorted(merged)
        )

    def __iter__(self) -> Iterator[Taint]:
        for (kind, origin), chain in self._entries:
            yield Taint(kind, origin, chain)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(key for key, _ in self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaintSet):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        # repro-lint: allow[REPRO104] hashing protocol only; never ordered by or persisted
        return hash(self._entries)

    def same_keys(self, other: "TaintSet") -> bool:
        """Key-level equality — the fixpoint's convergence test.

        Chains are excluded: a longer path through a loop may discover
        an equal-length alternative chain without adding information,
        and convergence on keys bounds the iteration count.
        """
        return self.keys() == other.keys()

    def union(self, other: "TaintSet") -> "TaintSet":
        if not other:
            return self
        if not self:
            return other
        return TaintSet(list(self) + list(other))

    def extend(self, hop: str) -> "TaintSet":
        return TaintSet(taint.extend(hop) for taint in self)

    def drop_order(self) -> "TaintSet":
        """Erase order-kinds (the effect of ``sorted()`` and friends)."""
        return TaintSet(t for t in self if t.kind not in ORDER_KINDS)

    def only(self, kinds: frozenset) -> "TaintSet":
        return TaintSet(t for t in self if t.kind in kinds)

    def without(self, kinds: frozenset) -> "TaintSet":
        return TaintSet(t for t in self if t.kind not in kinds)

    def first(self) -> Optional[Taint]:
        """The canonical representative (smallest key) for diagnostics."""
        for taint in self:
            return taint
        return None


EMPTY = TaintSet()


class TaintState:
    """Abstract state at one program point: variable name → TaintSet.

    Missing names are untainted.  States are compared by their key
    projection (see :meth:`TaintSet.same_keys`) so the worklist
    terminates.
    """

    __slots__ = ("vars",)

    def __init__(self, variables: Optional[Mapping[str, TaintSet]] = None) -> None:
        self.vars: Dict[str, TaintSet] = dict(variables or {})

    def copy(self) -> "TaintState":
        return TaintState(self.vars)

    def get(self, name: str) -> TaintSet:
        return self.vars.get(name, EMPTY)

    def set(self, name: str, taints: TaintSet) -> None:
        if taints:
            self.vars[name] = taints
        else:
            self.vars.pop(name, None)

    def join(self, other: "TaintState") -> "TaintState":
        out = TaintState(self.vars)
        for name in other.vars:
            out.set(name, out.get(name).union(other.vars[name]))
        return out

    def same_keys(self, other: "TaintState") -> bool:
        if sorted(self.vars) != sorted(other.vars):
            return False
        return all(
            self.vars[name].same_keys(other.vars[name]) for name in self.vars
        )
