"""Project-level driver for the dataflow engine.

:func:`analyze_project` is the single entry point the lint engine
calls: build the function inventory, iterate summaries to a project
fixpoint (taint and ownership halves computed together, since a
function's summary needs both), then report every module against the
final summaries.  All iteration orders are sorted — the result is a
pure function of the source text.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.lint.dataflow import ownership, taint
from repro.lint.dataflow.summaries import (
    FunctionInfo,
    FunctionSummary,
    SummaryMap,
    build_summaries,
    collect_functions,
)
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext

__all__ = ["analyze_project", "DATAFLOW_RULE_IDS"]

#: Every rule the dataflow engine can emit.
DATAFLOW_RULE_IDS = taint.TAINT_RULE_IDS + ownership.OWNERSHIP_RULE_IDS


def analyze_project(
    trees: Dict[str, ast.Module], project: ProjectContext
) -> List[Finding]:
    """Interprocedural REPRO5xx/6xx findings for the parsed file set."""
    functions = collect_functions(trees)

    def summarize(info: FunctionInfo, summaries: SummaryMap) -> FunctionSummary:
        param_to_return, intrinsic, param_sinks, returns_set = (
            taint.summarize_function(info, summaries, project)
        )
        return FunctionSummary(
            param_to_return=param_to_return,
            intrinsic_return=intrinsic,
            param_sinks=param_sinks,
            returns_set=returns_set,
            resource_indices=ownership.resource_summary(info, summaries),
        )

    summaries = build_summaries(functions, project, summarize)

    findings: List[Finding] = []
    for path in sorted(trees):
        findings.extend(taint.report_module(path, trees[path], project, summaries))
        findings.extend(ownership.report_module(path, trees[path], summaries))
    findings.sort(key=lambda finding: finding.sort_key)
    return findings
