"""Finding and severity model shared by the code linter and ``afdx lint``.

A :class:`Finding` is one diagnostic: a rule id, a severity, a location
and a message.  Findings sort by ``(path, line, column, rule id)`` so
every reporter — text, JSON, the run manifest — emits them in the same
deterministic order regardless of rule-execution or filesystem order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:  # used directly by the text reporter
        return self.value


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a lint rule.

    Attributes
    ----------
    rule_id:
        Stable identifier (``REPRO101``, ``CFG102``, ...) documented in
        ``docs/LINT.md``.
    severity:
        :class:`Severity` of the finding.
    path:
        Source file (code linter) or configuration file / name
        (config verifier) the finding belongs to.
    line / column:
        1-based line and 0-based column; both 0 for whole-file or
        whole-configuration findings.
    message:
        Human-readable, single-line description.
    waived:
        True when an inline waiver suppressed the finding; waived
        findings are reported (JSON) but never affect the exit code.
    waiver_reason:
        The reason text of the waiver that suppressed this finding.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    waived: bool = field(default=False, compare=False)
    waiver_reason: Optional[str] = field(default=None, compare=False)

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.column, self.rule_id, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (stable key order via sort)."""
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "waived": self.waived,
        }
        if self.waiver_reason is not None:
            out["waiver_reason"] = self.waiver_reason
        return out

    def render(self) -> str:
        """The canonical one-line text form."""
        location = f"{self.path}:{self.line}:{self.column}"
        suffix = f" (waived: {self.waiver_reason})" if self.waived else ""
        return f"{location}: {self.severity} {self.rule_id}: {self.message}{suffix}"
