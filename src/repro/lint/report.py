"""Reporters for lint results: human text and machine JSON.

Both are deterministic: findings arrive pre-sorted from the engine and
the JSON form is serialized with ``sort_keys=True`` and a trailing
newline, so two runs over the same tree produce byte-identical output
(the property ``tests/lint/test_determinism.py`` locks in).
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, show_waived: bool = False) -> str:
    """One line per finding plus a summary line."""
    lines = []
    for finding in result.findings:
        if finding.waived and not show_waived:
            continue
        lines.append(finding.render())
    for path, message in result.parse_failures:
        lines.append(f"{path}:0:0: error PARSE: {message}")
    lines.append(
        f"{len(result.files)} file(s): {result.errors} error(s), "
        f"{result.warnings} warning(s), {result.waived} waived"
    )
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Stable JSON document (sorted keys, 2-space indent, newline-terminated)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
