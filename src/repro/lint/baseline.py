"""Committed finding baselines: fail on *new* findings only.

Turning a whole-program analysis on over a living tree needs a
ratchet: pre-existing findings that are understood-but-not-yet-fixed
are recorded in a committed JSON baseline, and the CLI then fails only
when a finding **not** in the baseline appears.  The schema is
deliberately small::

    {
      "schema": 1,
      "findings": {
        "REPRO501|scripts/foo.py|<message>": 1,
        ...
      }
    }

Keys are ``rule|path|message`` (no line number — the message already
anchors the site, and pure-whitespace shifts should not invalidate the
baseline); values count occurrences so a file with two identical
findings is distinguishable from one.  Keys are sorted on write, so
regenerating the baseline over an unchanged tree is byte-identical.

The baseline never *hides* anything: baselined findings are still
reported (marked like waived ones, with the baseline path as the
reason) and ``--strict`` refuses the ratchet entirely — that is the
advisory mirror of ``bench_gate.py``'s strict mode.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

__all__ = [
    "BaselineError",
    "finding_key",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_SCHEMA = 1


class BaselineError(ValueError):
    """The baseline file exists but is not usable."""


def finding_key(finding: Finding) -> str:
    return f"{finding.rule_id}|{finding.path}|{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Parse a baseline file into ``{key: count}``."""
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("schema") != _SCHEMA:
        raise BaselineError(
            f"baseline {path} has unsupported schema "
            f"{document.get('schema') if isinstance(document, dict) else '?'!r}"
            f" (expected {_SCHEMA})"
        )
    findings = document.get("findings")
    if not isinstance(findings, dict):
        raise BaselineError(f"baseline {path} has no 'findings' mapping")
    out: Dict[str, int] = {}
    for key, count in findings.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise BaselineError(f"baseline {path}: bad entry {key!r}: {count!r}")
        out[key] = count
    return out


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write the baseline for the given (active, unwaived) findings."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    document = {
        "schema": _SCHEMA,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into ``(new, baselined)``.

    Consumes baseline counts in finding-sort order, so when a file has
    three identical findings against a baselined count of two, exactly
    one (the last) is new — deterministically.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
