"""Exception hierarchy for the AFDX delay-analysis library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Configuration problems (bad wiring, duplicate
names, ARINC-664 constraint violations) raise
:class:`ConfigurationError` subclasses *at construction time*; analysis
failures (unstable networks, cyclic routing) raise
:class:`AnalysisError` subclasses when an analyzer runs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DuplicateNameError",
    "UnknownNodeError",
    "InvalidTopologyError",
    "InvalidVirtualLinkError",
    "AnalysisError",
    "CyclicRoutingError",
    "UnstableNetworkError",
    "ConvergenceError",
    "ProvenanceError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A network configuration violates a structural or ARINC-664 rule."""


class DuplicateNameError(ConfigurationError):
    """Two network elements were registered under the same name."""


class UnknownNodeError(ConfigurationError):
    """A name referenced in a link, route or query does not exist."""


class InvalidTopologyError(ConfigurationError):
    """Physical wiring breaks an AFDX rule (e.g. two links on one ES port)."""


class InvalidVirtualLinkError(ConfigurationError):
    """A Virtual Link definition is malformed (bad BAG, path, sizes...)."""


class AnalysisError(ReproError):
    """Base class for failures of a worst-case analysis run."""


class CyclicRoutingError(AnalysisError):
    """VL routing induces a cycle in the output-port graph.

    Both the Network Calculus feed-forward propagation and the Trajectory
    fixed point require an acyclic port graph; ARINC-664 configurations
    are engineered to satisfy this.
    """


class UnstableNetworkError(AnalysisError):
    """Some output port has long-term utilization >= 1.

    No finite worst-case delay bound exists in that case; the
    configuration would also fail AFDX admission control.
    """


class ConvergenceError(AnalysisError):
    """An iterative fixed point failed to converge within its budget."""


class ProvenanceError(AnalysisError):
    """A bound decomposition failed its conservation invariant.

    Raised when the sum of a decomposition's terms does not reproduce
    the reported bound bit-exactly, or when a provenance replay
    disagrees with the recorded analysis — either means the explain
    layer and the analyzer have drifted apart, which is a bug.
    """
