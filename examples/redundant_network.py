#!/usr/bin/env python
"""Dual-network redundancy and mixed-priority analysis.

The paper's industrial platform uses *two redundant AFDX sub-networks*:
each frame is transmitted on networks A and B, and the receiver's
Redundancy Management (RM) delivers the first valid copy.  This example

* builds network A (the Fig. 1 configuration) and derives its network-B
  twin with `duplicate_network`,
* degrades network B (slower switches, as after a partial failure or a
  heterogeneous retrofit) to make the combination non-trivial,
* bounds every VL path on both networks with the combined approach and
  merges the results into the three redundancy figures: first-copy
  delay, loss-of-one-network delay, and the RM skew window,
* promotes two VLs to ARINC-664 high priority and shows what static
  priority queueing buys them (`repro.netcalc.priority`).

Run with:  python examples/redundant_network.py
"""

from repro.configs import fig1_network
from repro.core import compare_methods
from repro.netcalc import analyze_network_calculus, analyze_static_priority
from repro.network import Switch, combine_redundant, duplicate_network


def build_degraded_twin(network):
    """Network B with slower (24 us) switch fabrics."""
    twin = duplicate_network(network, suffix="_B")
    degraded = duplicate_network(network, suffix="_B")
    # rebuild with higher latency switches
    slow = type(twin)(rate_bits_per_us=twin.default_rate, name="fig1_B_slow")
    for name in sorted(twin.nodes):
        node = twin.nodes[name]
        if node.is_switch:
            slow.add_node(Switch(name=name, technological_latency_us=24.0))
        else:
            slow.add_node(node)
    for a, b, rate in twin.links():
        slow.add_link(a, b, rate_bits_per_us=rate)
    for name in sorted(twin.virtual_links):
        slow.add_virtual_link(twin.virtual_links[name])
    del degraded
    return slow


def main():
    network_a = fig1_network()
    network_b = build_degraded_twin(network_a)
    print(f"network A: {network_a!r}")
    print(f"network B: {network_b!r} (degraded: 24 us switch latency)\n")

    bounds_a = {k: p.best_us for k, p in compare_methods(network_a).paths.items()}
    bounds_b = {k: p.best_us for k, p in compare_methods(network_b).paths.items()}
    merged = combine_redundant(network_a, network_b, bounds_a, bounds_b)

    header = (
        f"{'VL path':<10}{'A bound':>10}{'B bound':>10}"
        f"{'first copy':>12}{'any copy':>10}{'RM skew':>10}"
    )
    print(header)
    print("-" * len(header))
    for key in sorted(merged):
        r = merged[key]
        print(
            f"{r.vl_name + '[' + str(r.path_index) + ']':<10}"
            f"{r.bound_a_us:>10.1f}{r.bound_b_us:>10.1f}"
            f"{r.first_copy_us:>12.1f}{r.any_copy_us:>10.1f}{r.skew_us:>10.1f}"
        )

    worst_skew = max(r.skew_us for r in merged.values())
    print(f"\nRM skew window must cover {worst_skew:.0f} us on this pair.\n")

    # ---- static priority study on network A --------------------------
    prioritized = network_a.copy()
    for name in ("v1", "v5"):  # latency-critical flows
        prioritized.replace_virtual_link(prioritized.vl(name).with_priority(1))

    fifo = analyze_network_calculus(prioritized)
    spq = analyze_static_priority(prioritized)
    print("static priority queueing (v1 and v5 promoted to high):")
    print(f"{'VL':<6}{'class':>6}{'FIFO bound':>12}{'SPQ bound':>12}{'delta':>9}")
    for name in sorted(prioritized.virtual_links):
        level = "high" if prioritized.vl(name).priority else "low"
        f, s = fifo.bound_us(name), spq.bound_us(name)
        print(f"{name:<6}{level:>6}{f:>12.1f}{s:>12.1f}{s - f:>+9.1f}")
    print(
        "\nhigh-priority flows tighten sharply; low-priority flows pay a "
        "bounded penalty\n(leftover service + one blocking frame), exactly "
        "the SPQ trade-off studied in the\nfollow-up AFDX literature."
    )


if __name__ == "__main__":
    main()
