#!/usr/bin/env python
"""Certification-style analysis of an industrial-scale configuration.

Mirrors the workflow behind the paper's Table I: generate the
industrial-scale configuration (~1000 VLs, >6000 paths, 8 switches,
>100 end systems), validate it against the ARINC-664 rules, bound every
VL path with both methods, and report:

* the Table I benefit statistics,
* the ten most critical VL paths (largest combined bound),
* per-switch-count breakdown of the bounds,
* the network-wide buffer budget from the Network Calculus backlog
  bounds (the paper notes the same analysis sizes switch memory).

Run with:  python examples/industrial_certification.py [n_vls]
(default 1000 — pass e.g. 200 for a quick run)
"""

import sys
from collections import defaultdict

from repro.configs import IndustrialConfigSpec, industrial_network
from repro.core import build_comparison, summarize
from repro.netcalc import analyze_network_calculus
from repro.network.validation import validate_network
from repro.trajectory import analyze_trajectory


def main():
    n_vls = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    spec = IndustrialConfigSpec(n_virtual_links=n_vls)
    network = industrial_network(spec)
    print(f"generated {network!r}")

    report = validate_network(network)
    worst_util = max(report.port_utilization.values())
    print(f"validation: {'OK' if report.ok else 'INVALID'}, "
          f"max port utilization {worst_util:.3f}\n")

    nc = analyze_network_calculus(network, grouping=True)
    trajectory = analyze_trajectory(network, serialization=True)
    result = build_comparison(nc, trajectory)
    stats = summarize(result.paths.values())
    print(stats.as_table())

    print("\nten most critical VL paths (combined bound):")
    ranked = sorted(result.paths.values(), key=lambda p: -p.best_us)[:10]
    for path in ranked:
        print(
            f"  {path.flow:<14} {' -> '.join(path.node_path):<44} "
            f"{path.best_us:>9.1f} us"
        )

    by_hops = defaultdict(list)
    for path in result.paths.values():
        by_hops[len(path.node_path) - 2].append(path.best_us)
    print("\ncombined bound by number of crossed switches:")
    for hops in sorted(by_hops):
        values = by_hops[hops]
        print(
            f"  {hops} switch(es): {len(values):>5} paths, "
            f"mean {sum(values) / len(values):>8.1f} us, "
            f"max {max(values):>8.1f} us"
        )

    total_bits = nc.total_buffer_bits()
    print(
        f"\nswitch buffer budget (sum of per-port NC backlog bounds): "
        f"{total_bits / 8 / 1024:.1f} KiB across {len(nc.ports)} output ports"
    )


if __name__ == "__main__":
    main()
