#!/usr/bin/env python
"""Parameter-influence study: when does which method win?

Reproduces the paper's Sec. III-B analysis on the Fig. 2 sample
configuration: sweep the frame size (Fig. 7) and the BAG (Fig. 8) of
VL v1, print both bounds side by side as ASCII series, and render the
(BAG x s_max) difference grid of Fig. 9 — positive cells mean the
Trajectory bound is tighter, negative cells mean Network Calculus wins.

Run with:  python examples/parameter_sweep.py
"""

from repro.experiments import run_fig7, run_fig8, run_fig9


def plot_series(rows, value_columns=(1, 2), width=52):
    """Tiny ASCII plot: one line per sweep point, bars for each bound."""
    values = [row[c] for row in rows for c in value_columns]
    top = max(values)
    for row in rows:
        label = f"{row[0]:>9}"
        bars = []
        for column, symbol in zip(value_columns, "T#N="):
            length = max(1, round(width * row[column] / top))
            bars.append(f"{symbol * length:<{width}} {row[column]:7.1f}")
        print(f"{label}  T|{bars[0]}")
        print(f"{'':>9}  N|{bars[1]}")


def main():
    fig7 = run_fig7()
    print(fig7.render())
    print("\nASCII view (T = Trajectory, N = Network Calculus):")
    plot_series(fig7.rows[::3])

    print()
    fig8 = run_fig8()
    print(fig8.render())

    print()
    fig9 = run_fig9()
    print(fig9.render())

    negative = [
        (row[0], header)
        for row in fig9.rows
        for header, cell in zip(fig9.headers[1:], row[1:])
        if isinstance(cell, (int, float)) and cell < 0
    ]
    print(
        f"\nNetwork Calculus wins in {len(negative)} grid cells "
        f"(all at small s_max) -> combine both methods per path, "
        "as the paper concludes."
    )


if __name__ == "__main__":
    main()
