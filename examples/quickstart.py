#!/usr/bin/env python
"""Quickstart: build a small AFDX network and bound its delays.

Builds the paper's Fig. 2 sample configuration from scratch with the
public API (five emitting end systems, three switches, five Virtual
Links), runs both worst-case analyses and prints per-path bounds — the
same numbers as Sec. II-B of the paper.

Run with:  python examples/quickstart.py
"""

from repro import NetworkBuilder
from repro.core import compare_methods


def build_network():
    """The paper's Fig. 2 configuration, assembled by hand."""
    builder = (
        NetworkBuilder(name="quickstart", switch_latency_us=16.0)
        .switches("S1", "S2", "S3")
        .end_systems("e1", "e2", "e3", "e4", "e5", "e6", "e7")
        .link("e1", "S1")
        .link("e2", "S1")
        .link("e3", "S2")
        .link("e4", "S2")
        .link("e5", "S2")
        .link("S1", "S3")
        .link("S2", "S3")
        .link("S3", "e6")
        .link("S3", "e7")
    )
    # all VLs: BAG 4 ms, frames of 500 B (40 us at 100 Mb/s)
    for index, source in enumerate(["e1", "e2", "e3", "e4", "e5"], start=1):
        builder.virtual_link(
            f"v{index}",
            source=source,
            destinations=["e7" if index == 5 else "e6"],
            bag_ms=4,
            s_max_bytes=500,
        )
    return builder.build()


def main():
    network = build_network()
    print(f"analyzing {network!r}\n")

    result = compare_methods(network)
    header = f"{'VL path':<10}{'route':<24}{'WCNC':>10}{'Traj':>10}{'best':>10}"
    print(header)
    print("-" * len(header))
    for path in result.path_list():
        route = " -> ".join(path.node_path)
        print(
            f"{path.flow:<10}{route:<24}{path.network_calculus_us:>10.1f}"
            f"{path.trajectory_us:>10.1f}{path.best_us:>10.1f}"
        )

    print()
    print(result.stats.as_table())
    print(
        "\nEvery bound is in microseconds, measured from frame release at "
        "the source ES\nto complete reception at the destination ES."
    )


if __name__ == "__main__":
    main()
