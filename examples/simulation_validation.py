#!/usr/bin/env python
"""Validate analytic bounds against frame-level simulation.

The paper's bounds come from static analyses; this example provides the
matching dynamic evidence.  It simulates the Fig. 2 and Fig. 1
configurations under several traffic scenarios (synchronized worst-case
release, random offsets, sporadic emission) and checks that every
observed end-to-end delay stays below both analytic bounds — and shows
how *close* the worst observed delay comes to the Trajectory bound
(tightness witnesses: on Fig. 2 several paths attain it exactly).

It also demonstrates the serialization-optimism finding documented in
``repro.trajectory.serialization``: the historical 'paper' credit can
be undershot by an admissible scenario, while the 'safe' mode cannot.

Run with:  python examples/simulation_validation.py
"""

from repro.configs import fig1_network, fig2_network
from repro.netcalc import analyze_network_calculus
from repro.network import NetworkBuilder
from repro.sim import TrafficScenario, simulate
from repro.trajectory import analyze_trajectory

SCENARIOS = {
    "synchronized, saturated": TrafficScenario(duration_ms=100, synchronized=True),
    "random offsets": TrafficScenario(duration_ms=100, synchronized=False, seed=7),
    "sporadic, random sizes": TrafficScenario(
        duration_ms=100, periodic=False, max_size=False, seed=11
    ),
}


def validate(network):
    print(f"--- {network!r} ---")
    nc = analyze_network_calculus(network)
    trajectory = analyze_trajectory(network, serialization="safe")
    for label, scenario in SCENARIOS.items():
        observed = simulate(network, scenario)
        violations = 0
        tightness = []
        for key, stats in observed.paths.items():
            bound = trajectory.paths[key].total_us
            if stats.max_us > bound + 1e-6 or stats.max_us > nc.paths[key].total_us + 1e-6:
                violations += 1
            tightness.append(stats.max_us / bound)
        print(
            f"  {label:<26} {len(observed.paths)} paths, "
            f"violations: {violations}, worst-case coverage "
            f"(observed/bound): max {max(tightness) * 100:.1f}%"
        )
    print()


def demonstrate_serialization_optimism():
    """The scenario where the paper's serialization credit undershoots."""
    builder = NetworkBuilder("optimism").switches("SW").end_systems("a", "b", "d")
    builder.link("a", "SW").link("b", "SW").link("SW", "d")
    for index in range(5):
        for source in ("a", "b"):
            builder.virtual_link(
                f"v{source}{index}", source=source, destinations=["d"],
                bag_ms=4, s_max_bytes=500, s_min_bytes=500,
            )
    network = builder.build()

    paper = analyze_trajectory(network, serialization="paper")
    safe = analyze_trajectory(network, serialization="safe")
    observed = simulate(network, TrafficScenario(duration_ms=40))

    worst = observed.worst_observed()
    key = (worst.vl_name, worst.path_index)
    print("--- serialization-optimism demonstration ---")
    print(f"  flow {worst.vl_name}: observed worst delay {worst.max_us:.1f} us")
    print(f"  'paper' credit bound:  {paper.paths[key].total_us:.1f} us "
          f"({'VIOLATED' if worst.max_us > paper.paths[key].total_us else 'holds'})")
    print(f"  'safe' bound:          {safe.paths[key].total_us:.1f} us "
          f"({'VIOLATED' if worst.max_us > safe.paths[key].total_us else 'holds'})")
    print(
        "  -> the historical per-group credit is optimistic here, as later\n"
        "     shown in the literature (see repro.trajectory.serialization)."
    )


def main():
    validate(fig2_network())
    validate(fig1_network())
    demonstrate_serialization_optimism()


if __name__ == "__main__":
    main()
