#!/usr/bin/env python
"""Switch buffer dimensioning from Network Calculus backlog bounds.

The paper notes (Sec. II-B) that the certification analysis "gives also
intermediate information on latency time in switch output ports, which
permits to scale the switch memory buffers and avoid buffer overflows".
This example reproduces that workflow on the Fig. 1 configuration:

* compute the per-port backlog (vertical-deviation) bounds,
* compare them with the peak buffer occupancy observed by simulation
  under the synchronized worst-case scenario,
* print the resulting FIFO sizing recommendation per output port.

Run with:  python examples/buffer_dimensioning.py
"""

from repro.configs import fig1_network
from repro.netcalc import analyze_network_calculus
from repro.sim import TrafficScenario, simulate


def main():
    network = fig1_network()
    print(f"dimensioning buffers for {network!r}\n")

    nc = analyze_network_calculus(network, grouping=True)
    observed = simulate(network, TrafficScenario(duration_ms=200, synchronized=True))

    header = (
        f"{'output port':<14}{'flows':>6}{'backlog bound':>16}"
        f"{'observed peak':>16}{'headroom':>10}"
    )
    print(header)
    print("-" * len(header))
    total_bound = 0.0
    for port_id in sorted(nc.ports):
        analysis = nc.ports[port_id]
        if network.node(port_id[0]).is_end_system:
            continue  # ES buffers are host memory; size switch ports only
        peak = observed.peak_backlog_bits.get(port_id, 0.0)
        bound_bytes = analysis.backlog_bits / 8
        total_bound += bound_bytes
        ratio = peak / analysis.backlog_bits if analysis.backlog_bits else 0.0
        print(
            f"{port_id[0] + '->' + port_id[1]:<14}{analysis.n_flows:>6}"
            f"{bound_bytes:>13.0f} B{peak / 8:>13.0f} B{100 * (1 - ratio):>9.0f}%"
        )

    print(
        f"\ntotal switch buffer budget: {total_bound / 1024:.1f} KiB "
        "(provisioning each FIFO at its bound guarantees zero frame loss)"
    )
    print(
        "observed peaks come from a synchronized saturated scenario; "
        "the analytic bound always dominates them."
    )


if __name__ == "__main__":
    main()
